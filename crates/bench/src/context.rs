//! Shared experiment context: models, machine configuration and the trace
//! suite.

use lowvcc_core::{CoreConfig, Parallelism};

use crate::error::ExperimentError;
use lowvcc_energy::EnergyModel;
use lowvcc_sram::CycleTimeModel;
use lowvcc_trace::{suite, Trace, TraceSpec};

/// Everything an experiment needs: the calibrated models, the machine, and
/// a built trace suite.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Calibrated timing model.
    pub timing: CycleTimeModel,
    /// Calibrated energy model.
    pub energy: EnergyModel,
    /// Machine configuration.
    pub core: CoreConfig,
    /// The workload suite.
    pub suite: Vec<Trace>,
    /// Human-readable suite label for reports.
    pub suite_label: String,
    /// Worker threads for suite sweeps (sequential by default; every
    /// experiment's output is identical for any value).
    pub parallelism: Parallelism,
}

impl ExperimentContext {
    /// Builds a context from trace specs.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn from_specs(specs: &[TraceSpec], label: &str) -> Result<Self, ExperimentError> {
        let mut traces = Vec::with_capacity(specs.len());
        for s in specs {
            traces.push(s.build()?);
        }
        Ok(Self {
            timing: CycleTimeModel::silverthorne_45nm(),
            energy: EnergyModel::silverthorne_45nm(),
            core: CoreConfig::silverthorne(),
            suite: traces,
            suite_label: label.to_string(),
            parallelism: Parallelism::sequential(),
        })
    }

    /// Returns the context with suite sweeps fanned out over `par`
    /// worker threads. Results are unchanged — only wall-clock time.
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Tiny suite (7 traces × 10k uops) — for tests and criterion benches.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn quick() -> Result<Self, ExperimentError> {
        Self::from_specs(&suite(1, 10_000), "quick (7×10k)")
    }

    /// Standard suite (49 traces × 200k uops) — the default for the
    /// `experiments` binary; a scaled-down stand-in for the paper's
    /// 531 × 10 M traces.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn standard() -> Result<Self, ExperimentError> {
        Self::from_specs(&suite(7, 200_000), "standard (49×200k)")
    }

    /// Paper-scale suite (532 traces × 200k uops — the closest
    /// 7-family multiple of the paper's 531 traces, at a trace length
    /// the parallel runner sweeps in minutes rather than days).
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn paper() -> Result<Self, ExperimentError> {
        Self::from_specs(&suite(76, 200_000), "paper (532×200k)")
    }

    /// Custom suite size.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn sized(per_family: u32, len: usize) -> Result<Self, ExperimentError> {
        Self::from_specs(
            &suite(per_family, len),
            &format!("custom ({}×{len})", per_family * 7),
        )
    }

    /// Total dynamic uops in the suite.
    #[must_use]
    pub fn total_uops(&self) -> usize {
        self.suite.iter().map(Trace::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_context_builds() {
        let ctx = ExperimentContext::quick().unwrap();
        assert_eq!(ctx.suite.len(), 7);
        assert_eq!(ctx.total_uops(), 70_000);
        assert!(ctx.suite_label.contains("quick"));
    }

    #[test]
    fn sized_context_scales() {
        let ctx = ExperimentContext::sized(2, 5_000).unwrap();
        assert_eq!(ctx.suite.len(), 14);
        assert_eq!(ctx.total_uops(), 70_000);
    }
}
