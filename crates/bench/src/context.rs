//! Shared experiment context: models, machine configuration, the trace
//! suite, and the optional result cache every experiment runs through.

use std::sync::Arc;

use lowvcc_core::{
    run_batch_groups, run_suite_with, sim_key, speedup, CoreConfig, MechanismComparison,
    Parallelism, SimConfig, SimResult, SuiteResult,
};

use crate::error::ExperimentError;
use crate::store::{Flight, FlightGuard, FlightWaiter, ResultStore};
use lowvcc_energy::EnergyModel;
use lowvcc_sram::{CycleTimeModel, Millivolts};
use lowvcc_trace::{suite, Trace, TraceSpec};

/// A parsed suite choice — the one grammar behind the `--suite` flag of
/// both the `experiments` binary and `lowvcc-serve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteChoice {
    /// 7 traces × 10k uops.
    Quick,
    /// 49 traces × 200k uops.
    Standard,
    /// 532 traces × 200k uops.
    Paper,
    /// `NxLEN`: N traces per family, LEN uops each.
    Sized {
        /// Traces per workload family.
        per_family: u32,
        /// Dynamic uops per trace.
        len: usize,
    },
}

/// Why a `--suite` argument was rejected. The `Display` form is the
/// usage message both binaries print verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteSpecError {
    /// Not a named suite and not of the `NxLEN` form.
    BadSpec(String),
    /// The `N` in `NxLEN` is not a count.
    BadPerFamily,
    /// The `LEN` in `NxLEN` is not a length.
    BadLength,
    /// Zero traces per family or zero-length traces: no defined
    /// speedups/EDP.
    Degenerate,
}

impl std::fmt::Display for SuiteSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadSpec(spec) => write!(f, "bad suite spec {spec}; want e.g. 3x50000"),
            Self::BadPerFamily => write!(f, "bad per-family count"),
            Self::BadLength => write!(f, "bad trace length"),
            Self::Degenerate => write!(
                f,
                "suite spec needs at least 1 trace per family and 1 uop per trace"
            ),
        }
    }
}

impl std::error::Error for SuiteSpecError {}

impl SuiteChoice {
    /// Parses a `--suite` argument (`quick`, `standard`, `paper`, or
    /// `NxLEN`), rejecting degenerate sizes before any work starts:
    /// zero traces per family or zero-length traces have no defined
    /// speedups/EDP.
    ///
    /// # Errors
    ///
    /// Returns a [`SuiteSpecError`] whose `Display` form is a usage
    /// message suitable for printing verbatim.
    pub fn parse(arg: &str) -> Result<Self, SuiteSpecError> {
        match arg {
            "quick" => Ok(Self::Quick),
            "standard" => Ok(Self::Standard),
            "paper" => Ok(Self::Paper),
            custom => {
                let Some((n, len)) = custom.split_once('x') else {
                    return Err(SuiteSpecError::BadSpec(custom.to_string()));
                };
                let Ok(n) = n.parse::<u32>() else {
                    return Err(SuiteSpecError::BadPerFamily);
                };
                let Ok(len) = len.parse::<usize>() else {
                    return Err(SuiteSpecError::BadLength);
                };
                if n == 0 || len == 0 {
                    return Err(SuiteSpecError::Degenerate);
                }
                Ok(Self::Sized { per_family: n, len })
            }
        }
    }

    /// Builds the corresponding context (generates the traces).
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn build(self) -> Result<ExperimentContext, ExperimentError> {
        match self {
            Self::Quick => ExperimentContext::quick(),
            Self::Standard => ExperimentContext::standard(),
            Self::Paper => ExperimentContext::paper(),
            Self::Sized { per_family, len } => ExperimentContext::sized(per_family, len),
        }
    }

    /// The trace specs [`build`](Self::build) would construct its suite
    /// from, *without* generating any trace — specs are a few bytes of
    /// identity (family, seed, length) and are all a request router
    /// needs to compute content-addressed keys.
    #[must_use]
    pub fn specs(self) -> Vec<TraceSpec> {
        match self {
            Self::Quick => suite(1, 10_000),
            Self::Standard => suite(7, 200_000),
            Self::Paper => suite(76, 200_000),
            Self::Sized { per_family, len } => suite(per_family, len),
        }
    }
}

/// Everything an experiment needs: the calibrated models, the machine,
/// a built trace suite (plus the specs that generated it, which key the
/// result cache), and the optional cache itself.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// Calibrated timing model.
    pub timing: CycleTimeModel,
    /// Calibrated energy model.
    pub energy: EnergyModel,
    /// Machine configuration.
    pub core: CoreConfig,
    /// The workload suite.
    pub suite: Vec<Trace>,
    /// The specs the suite was built from, index-aligned with `suite`.
    /// Content addressing hashes these (family, seed, length) rather
    /// than megabytes of generated uops.
    pub specs: Vec<TraceSpec>,
    /// Human-readable suite label for reports.
    pub suite_label: String,
    /// Worker threads for suite sweeps (sequential by default; every
    /// experiment's output is identical for any value).
    pub parallelism: Parallelism,
    /// Content-addressed result cache. When set, every suite run first
    /// consults it and only simulates the misses; results are byte-
    /// identical with or without it.
    pub cache: Option<Arc<ResultStore>>,
}

impl ExperimentContext {
    /// Builds a context from trace specs.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn from_specs(specs: &[TraceSpec], label: &str) -> Result<Self, ExperimentError> {
        let mut traces = Vec::with_capacity(specs.len());
        for s in specs {
            traces.push(s.build()?);
        }
        Ok(Self {
            timing: CycleTimeModel::silverthorne_45nm(),
            energy: EnergyModel::silverthorne_45nm(),
            core: CoreConfig::silverthorne(),
            suite: traces,
            specs: specs.to_vec(),
            suite_label: label.to_string(),
            parallelism: Parallelism::sequential(),
            cache: None,
        })
    }

    /// Returns the context with suite sweeps fanned out over `par`
    /// worker threads. Results are unchanged — only wall-clock time.
    #[must_use]
    pub fn with_parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// Returns the context with every suite run going through `store`.
    /// Results are unchanged — only which of them are simulated.
    #[must_use]
    pub fn with_cache(mut self, store: Arc<ResultStore>) -> Self {
        self.cache = Some(store);
        self
    }

    /// Tiny suite (7 traces × 10k uops) — for tests and criterion benches.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn quick() -> Result<Self, ExperimentError> {
        Self::from_specs(&suite(1, 10_000), "quick (7×10k)")
    }

    /// Standard suite (49 traces × 200k uops) — the default for the
    /// `experiments` binary; a scaled-down stand-in for the paper's
    /// 531 × 10 M traces.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn standard() -> Result<Self, ExperimentError> {
        Self::from_specs(&suite(7, 200_000), "standard (49×200k)")
    }

    /// Paper-scale suite (532 traces × 200k uops — the closest
    /// 7-family multiple of the paper's 531 traces, at a trace length
    /// the parallel runner sweeps in minutes rather than days).
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn paper() -> Result<Self, ExperimentError> {
        Self::from_specs(&suite(76, 200_000), "paper (532×200k)")
    }

    /// Custom suite size.
    ///
    /// # Errors
    ///
    /// Propagates trace-generation failures.
    pub fn sized(per_family: u32, len: usize) -> Result<Self, ExperimentError> {
        Self::from_specs(
            &suite(per_family, len),
            &format!("custom ({}×{len})", per_family * 7),
        )
    }

    /// Total dynamic uops in the suite.
    #[must_use]
    pub fn total_uops(&self) -> usize {
        self.suite.iter().map(Trace::len).sum()
    }

    /// Runs `cfg` over the whole suite, answering from the cache where
    /// possible and simulating only the misses (which are then stored).
    /// Output is bit-identical to an uncached [`run_suite_with`] for the
    /// same inputs — the determinism guarantee of DESIGN.md §6 is what
    /// makes keyed reuse sound.
    ///
    /// Misses go through the store's **single-flight** layer: this call
    /// simulates only the keys it claims leadership of (as one parallel
    /// batch over the work-stealing runner) and *waits* for keys some
    /// concurrent caller is already simulating — so N identical
    /// concurrent suite runs perform each simulation exactly once.
    /// Waiting happens after our own batch, so concurrent distinct
    /// workloads overlap instead of serializing.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures. The cache itself never errors a
    /// run: corrupt or unreadable entries are quarantined and
    /// re-simulated, and publish failures degrade the store to
    /// memory-only (see `store.rs`) — so output stays byte-identical
    /// even on a failing disk.
    ///
    /// # Panics
    ///
    /// Panics when a cache is configured and `specs` has drifted out of
    /// alignment with `suite` (both are public fields; keep them
    /// index-aligned).
    pub fn run_suite(&self, cfg: &SimConfig) -> Result<SuiteResult, ExperimentError> {
        let Some(store) = &self.cache else {
            return Ok(run_suite_with(cfg, &self.suite, self.parallelism)?);
        };
        // Hard assert, not debug: both fields are public, and a silent
        // zip truncation here would make the cached path drop the tail
        // of a misaligned suite — cache on/off changing results.
        assert_eq!(
            self.specs.len(),
            self.suite.len(),
            "ExperimentContext.specs must stay index-aligned with .suite"
        );
        let mut slots: Vec<Option<(String, SimResult)>> = self.suite.iter().map(|_| None).collect();
        let mut unresolved: Vec<usize> = (0..self.suite.len()).collect();
        while !unresolved.is_empty() {
            let mut leaders: Vec<(usize, FlightGuard<'_>)> = Vec::new();
            let mut pending: Vec<(usize, FlightWaiter)> = Vec::new();
            for &i in &unresolved {
                match store.lookup(sim_key(cfg, &self.specs[i])) {
                    Flight::Hit(result) => slots[i] = Some((self.suite[i].name.clone(), *result)),
                    Flight::Lead(guard) => leaders.push((i, guard)),
                    Flight::Pending(waiter) => pending.push((i, waiter)),
                }
            }
            if !leaders.is_empty() {
                let refs: Vec<&Trace> = leaders.iter().map(|&(i, _)| &self.suite[i]).collect();
                store.note_simulated_uops(refs.iter().map(|t| t.len() as u64).sum());
                // On error the guards drop unpublished, waking every
                // waiter to re-arbitrate; the error propagates here.
                let fresh = run_suite_with(cfg, &refs, self.parallelism)?;
                for ((i, guard), (name, result)) in leaders.into_iter().zip(fresh.per_trace) {
                    store.put(sim_key(cfg, &self.specs[i]), &result);
                    drop(guard); // publish: retires the flight, wakes waiters
                    slots[i] = Some((name, result));
                }
            }
            // A retired flight either published (next round hits) or was
            // abandoned by an erroring leader (next round claims it).
            unresolved = pending
                .into_iter()
                .map(|(i, waiter)| {
                    waiter.wait();
                    i
                })
                .collect();
        }
        Ok(SuiteResult {
            per_trace: slots
                .into_iter()
                .map(|s| s.expect("every slot filled"))
                .collect(),
        })
    }

    /// Runs every configuration over the whole suite, batched per trace:
    /// each trace is decoded once and all of `cfgs` replay it back to
    /// back through a reused engine workspace. Returns one
    /// [`SuiteResult`] per configuration, in `cfgs` order —
    /// byte-identical to calling [`Self::run_suite`] once per
    /// configuration (the `batch_vs_perpoint` suite asserts it).
    ///
    /// With a cache, store misses are batched **per trace** instead of
    /// per key: one round groups every missing configuration of a trace
    /// behind a single decode, so a cold 13-point sweep decodes each
    /// trace once rather than once per (config, trace) pair. Hits,
    /// single-flight leadership and waiting behave exactly as in
    /// [`Self::run_suite`].
    ///
    /// # Errors
    ///
    /// Propagates simulation failures (the cache never errors a run —
    /// see [`Self::run_suite`]).
    ///
    /// # Panics
    ///
    /// Panics when a cache is configured and `specs` has drifted out of
    /// alignment with `suite` (both are public fields; keep them
    /// index-aligned).
    pub fn run_suite_batch(&self, cfgs: &[SimConfig]) -> Result<Vec<SuiteResult>, ExperimentError> {
        let Some(store) = &self.cache else {
            return Ok(lowvcc_core::run_suite_batch(
                cfgs,
                &self.suite,
                self.parallelism,
            )?);
        };
        assert_eq!(
            self.specs.len(),
            self.suite.len(),
            "ExperimentContext.specs must stay index-aligned with .suite"
        );
        let mut slots: Vec<Vec<Option<(String, SimResult)>>> = cfgs
            .iter()
            .map(|_| self.suite.iter().map(|_| None).collect())
            .collect();
        // Trace-major order, so one round's leaders arrive grouped by
        // trace and each group below shares a single decode.
        let mut unresolved: Vec<(usize, usize)> = (0..self.suite.len())
            .flat_map(|t| (0..cfgs.len()).map(move |c| (t, c)))
            .collect();
        while !unresolved.is_empty() {
            let mut leaders: Vec<(usize, usize, FlightGuard<'_>)> = Vec::new();
            let mut pending: Vec<(usize, usize, FlightWaiter)> = Vec::new();
            for &(t, c) in &unresolved {
                match store.lookup(sim_key(&cfgs[c], &self.specs[t])) {
                    Flight::Hit(result) => {
                        slots[c][t] = Some((self.suite[t].name.clone(), *result));
                    }
                    Flight::Lead(guard) => leaders.push((t, c, guard)),
                    Flight::Pending(waiter) => pending.push((t, c, waiter)),
                }
            }
            if !leaders.is_empty() {
                // Group this round's misses per *trace* (leaders are
                // trace-major, so consecutive runs share an index):
                // `run_batch_groups` then decodes each trace once for
                // all of its missing configurations.
                let mut groups: Vec<(usize, Vec<SimConfig>)> = Vec::new();
                for (t, c, _) in &leaders {
                    match groups.last_mut() {
                        Some((ti, group)) if ti == t => group.push(cfgs[*c].clone()),
                        _ => groups.push((*t, vec![cfgs[*c].clone()])),
                    }
                }
                store.note_simulated_uops(
                    leaders
                        .iter()
                        .map(|(t, _, _)| self.suite[*t].len() as u64)
                        .sum(),
                );
                // On error the guards drop unpublished, waking every
                // waiter to re-arbitrate; the error propagates here.
                let fresh = run_batch_groups(&groups, &self.suite, self.parallelism)?;
                let results = fresh.into_iter().flatten();
                for ((t, c, guard), result) in leaders.into_iter().zip(results) {
                    store.put(sim_key(&cfgs[c], &self.specs[t]), &result);
                    drop(guard); // publish: retires the flight, wakes waiters
                    slots[c][t] = Some((self.suite[t].name.clone(), result));
                }
            }
            // A retired flight either published (next round hits) or was
            // abandoned by an erroring leader (next round claims it).
            unresolved = pending
                .into_iter()
                .map(|(t, c, waiter)| {
                    waiter.wait();
                    (t, c)
                })
                .collect();
        }
        Ok(slots
            .into_iter()
            .map(|per_trace| SuiteResult {
                per_trace: per_trace
                    .into_iter()
                    .map(|s| s.expect("every slot filled"))
                    .collect(),
            })
            .collect())
    }

    /// Baseline-vs-IRAW comparison at `vcc` over the suite, as one
    /// two-configuration batch through the cache. The cache-aware
    /// equivalent of [`lowvcc_core::compare_mechanisms_with`].
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn compare_mechanisms(
        &self,
        vcc: Millivolts,
    ) -> Result<MechanismComparison, ExperimentError> {
        let (base_cfg, iraw_cfg) = SimConfig::mechanism_pair(self.core, &self.timing, vcc);
        let mut suites = self.run_suite_batch(&[base_cfg, iraw_cfg])?;
        let iraw = suites.pop().expect("two configs in, two suites out");
        let baseline = suites.pop().expect("two configs in, two suites out");
        let speedup = speedup(&iraw, &baseline);
        Ok(MechanismComparison {
            vcc,
            baseline,
            iraw,
            frequency_gain: self.timing.frequency_gain(vcc),
            speedup,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_core::Mechanism;
    use lowvcc_sram::voltage::mv;

    #[test]
    fn quick_context_builds() {
        let ctx = ExperimentContext::quick().unwrap();
        assert_eq!(ctx.suite.len(), 7);
        assert_eq!(ctx.specs.len(), 7);
        assert_eq!(ctx.total_uops(), 70_000);
        assert!(ctx.suite_label.contains("quick"));
        for (spec, trace) in ctx.specs.iter().zip(&ctx.suite) {
            assert_eq!(spec.name(), trace.name, "specs track traces");
        }
    }

    #[test]
    fn suite_choice_specs_match_built_contexts() {
        // `specs()` must never drift from what `build()` constructs —
        // the router computes keys from the former, the shards from the
        // latter.
        let ctx = SuiteChoice::Quick.build().unwrap();
        assert_eq!(ctx.specs, SuiteChoice::Quick.specs());
        let choice = SuiteChoice::Sized {
            per_family: 2,
            len: 5_000,
        };
        assert_eq!(choice.build().unwrap().specs, choice.specs());
    }

    #[test]
    fn sized_context_scales() {
        let ctx = ExperimentContext::sized(2, 5_000).unwrap();
        assert_eq!(ctx.suite.len(), 14);
        assert_eq!(ctx.total_uops(), 70_000);
    }

    #[test]
    fn cached_suite_runs_match_uncached_bit_for_bit() {
        let ctx = ExperimentContext::sized(1, 3_000).unwrap();
        let cfg = SimConfig::at_vcc(ctx.core, &ctx.timing, mv(500), Mechanism::Iraw);
        let uncached = ctx.run_suite(&cfg).unwrap();

        let store = Arc::new(ResultStore::ephemeral());
        let ctx = ctx.with_cache(Arc::clone(&store));
        let cold = ctx.run_suite(&cfg).unwrap();
        assert_eq!(store.stats().misses, 7, "cold run simulates everything");
        let warm = ctx.run_suite(&cfg).unwrap();
        assert_eq!(store.stats().misses, 7, "warm run simulates nothing");
        assert_eq!(store.stats().hits, 7);
        assert_eq!(uncached, cold);
        assert_eq!(cold, warm);
    }

    #[test]
    fn concurrent_identical_runs_simulate_each_key_once() {
        let ctx = ExperimentContext::sized(1, 3_000).unwrap();
        let cfg = SimConfig::at_vcc(ctx.core, &ctx.timing, mv(500), Mechanism::Iraw);
        let sequential = ctx.run_suite(&cfg).unwrap();
        let store = Arc::new(ResultStore::ephemeral());
        let ctx = ctx.with_cache(Arc::clone(&store));
        let results: Vec<SuiteResult> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4).map(|_| s.spawn(|| ctx.run_suite(&cfg))).collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap().unwrap())
                .collect()
        });
        // Single-flight: 4 identical cold runs cost exactly 7 engine
        // invocations (one per trace), and everyone agrees bit-for-bit
        // with the uncached sequential answer.
        assert_eq!(store.stats().misses, 7, "one simulation per key");
        assert_eq!(store.stats().stores, 7);
        for r in &results {
            assert_eq!(*r, sequential);
        }
    }

    #[test]
    fn batched_cached_suite_matches_per_config_runs() {
        let ctx = ExperimentContext::sized(1, 3_000).unwrap();
        let cfgs: Vec<SimConfig> = [475u32, 500]
            .iter()
            .flat_map(|&v| {
                let (base, iraw) = SimConfig::mechanism_pair(ctx.core, &ctx.timing, mv(v));
                [base, iraw]
            })
            .collect();
        let per_cfg: Vec<SuiteResult> = cfgs.iter().map(|c| ctx.run_suite(c).unwrap()).collect();
        let uncached = ctx.run_suite_batch(&cfgs).unwrap();
        assert_eq!(per_cfg, uncached);

        let store = Arc::new(ResultStore::ephemeral());
        let ctx = ctx.with_cache(Arc::clone(&store));
        let cold = ctx.run_suite_batch(&cfgs).unwrap();
        assert_eq!(store.stats().misses, 28, "4 cfgs × 7 traces, all simulated");
        let warm = ctx.run_suite_batch(&cfgs).unwrap();
        assert_eq!(store.stats().misses, 28, "warm batch simulates nothing");
        assert_eq!(store.stats().hits, 28);
        assert_eq!(per_cfg, cold);
        assert_eq!(cold, warm);
    }

    #[test]
    fn concurrent_batched_runs_simulate_each_key_once() {
        let ctx = ExperimentContext::sized(1, 2_000).unwrap();
        let (base, iraw) = SimConfig::mechanism_pair(ctx.core, &ctx.timing, mv(500));
        let cfgs = vec![base, iraw];
        let sequential = ctx.run_suite_batch(&cfgs).unwrap();
        let store = Arc::new(ResultStore::ephemeral());
        let ctx = ctx.with_cache(Arc::clone(&store));
        let results: Vec<Vec<SuiteResult>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| ctx.run_suite_batch(&cfgs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap().unwrap())
                .collect()
        });
        // Single-flight still holds under per-trace batching: 4 identical
        // cold batches cost one simulation per (config, trace) key.
        assert_eq!(store.stats().misses, 14, "one simulation per key");
        assert_eq!(store.stats().stores, 14);
        for r in &results {
            assert_eq!(*r, sequential);
        }
    }

    #[test]
    fn cached_comparison_matches_uncached() {
        let ctx = ExperimentContext::sized(1, 3_000).unwrap();
        let direct = lowvcc_core::compare_mechanisms_with(
            ctx.core,
            &ctx.timing,
            mv(500),
            &ctx.suite,
            ctx.parallelism,
        )
        .unwrap();
        let cached_ctx = ctx.with_cache(Arc::new(ResultStore::ephemeral()));
        let through_cache = cached_ctx.compare_mechanisms(mv(500)).unwrap();
        assert_eq!(direct, through_cache);
    }
}
