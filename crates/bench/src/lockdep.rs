//! Debug-build lock-order detection (`lockdep`).
//!
//! [`OrderedMutex`] and [`OrderedCondvar`] are drop-in wrappers over the
//! `std::sync` primitives that, **in debug builds only**
//! (`cfg(debug_assertions)`), maintain a global graph of observed
//! lock-acquisition order between named *lock classes*:
//!
//! * every mutex is constructed with a `&'static str` class name
//!   (e.g. `"store.lru"`); distinct instances may share a class;
//! * acquiring class `B` while holding class `A` records the edge
//!   `A → B`;
//! * an acquisition whose new edge would close a cycle **panics
//!   immediately** with the named cycle path — turning a potential
//!   deadlock (which only manifests under a precise thread interleaving)
//!   into a deterministic failure on *any* interleaving that exercises
//!   both orders, even single-threaded test runs.
//!
//! The cycle check runs *before* the edge is inserted, so a caught
//! violation (e.g. `#[should_panic]` tests) leaves the graph acyclic and
//! later well-ordered acquisitions keep working. Acquiring a class that
//! is already held is permitted (distinct instances of one class, such
//! as per-key flight states, may nest); ordering is only enforced
//! *between* classes. [`OrderedCondvar::wait`] releases the guard's
//! class for the duration of the wait and re-records it on wake, exactly
//! mirroring the mutex the condvar temporarily releases.
//!
//! In release builds every wrapper compiles down to the plain `std`
//! primitive: no class field, no graph, no thread-local bookkeeping.
//!
//! Poisoning: the protected state in this workspace is cache/serve
//! bookkeeping that must survive a worker panic, so [`OrderedMutex::lock`]
//! recovers from poisoning (`PoisonError::into_inner`) instead of
//! propagating it. Tests that need to observe poisoning itself can reach
//! the wrapped primitive through [`OrderedMutex::raw`].

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

#[cfg(debug_assertions)]
mod lockgraph {
    //! The global class registry + order graph and the per-thread stack
    //! of held classes. Debug builds only.

    use std::cell::RefCell;
    use std::sync::{Mutex, PoisonError};

    struct Registry {
        /// Interned class names; a class id is an index into this table.
        classes: Vec<&'static str>,
        /// Adjacency lists: `edges[a]` holds every class observed to be
        /// acquired while `a` was held.
        edges: Vec<Vec<usize>>,
    }

    impl Registry {
        /// Directed path `from → … → to` over the recorded edges, if one
        /// exists (iterative DFS; the graph is tiny).
        fn path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
            let n = self.classes.len();
            let mut parent = vec![usize::MAX; n];
            let mut visited = vec![false; n];
            visited[from] = true;
            let mut stack = vec![from];
            while let Some(node) = stack.pop() {
                if node == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = parent[cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                for &next in &self.edges[node] {
                    if !visited[next] {
                        visited[next] = true;
                        parent[next] = node;
                        stack.push(next);
                    }
                }
            }
            None
        }
    }

    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        classes: Vec::new(),
        edges: Vec::new(),
    });

    thread_local! {
        /// Classes held by this thread, in acquisition order.
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    fn registry() -> std::sync::MutexGuard<'static, Registry> {
        // The registry itself must survive a poisoning panic (which the
        // cycle panic below causes by design).
        REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Interns `name`, returning its stable class id.
    pub(super) fn class_id(name: &'static str) -> usize {
        let mut reg = registry();
        if let Some(id) = reg.classes.iter().position(|&c| c == name) {
            return id;
        }
        reg.classes.push(name);
        reg.edges.push(Vec::new());
        reg.classes.len() - 1
    }

    /// Records an acquisition of `class`: adds an order edge from every
    /// held class, panicking — *before* inserting — if an edge would
    /// close a cycle.
    pub(super) fn acquire(class: usize) {
        let held: Vec<usize> = HELD.with(|h| h.borrow().clone());
        {
            let mut reg = registry();
            for &h in &held {
                if h == class || reg.edges[h].contains(&class) {
                    continue;
                }
                if let Some(path) = reg.path(class, h) {
                    let mut cycle: Vec<&str> = path.iter().map(|&i| reg.classes[i]).collect();
                    cycle.push(reg.classes[class]);
                    let acquiring = reg.classes[class];
                    let holding = reg.classes[h];
                    // Checked before insertion, so the graph stays
                    // acyclic even when this panic is caught.
                    panic!(
                        "lock-order cycle: acquiring \"{acquiring}\" while holding \
                         \"{holding}\" would close the cycle {}",
                        cycle.join(" -> ")
                    );
                }
                reg.edges[h].push(class);
            }
        }
        HELD.with(|h| h.borrow_mut().push(class));
    }

    /// Records a release of `class` (the most recent acquisition wins,
    /// matching nested same-class guards).
    pub(super) fn release(class: usize) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&c| c == class) {
                held.remove(pos);
            }
        });
    }
}

/// A [`Mutex`] tagged with a lock-order class, checked in debug builds.
/// See the [module docs](self) for the ordering discipline.
pub struct OrderedMutex<T> {
    inner: Mutex<T>,
    #[cfg(debug_assertions)]
    class: usize,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex belonging to lock class `name`.
    pub fn new(name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = name;
        Self {
            inner: Mutex::new(value),
            #[cfg(debug_assertions)]
            class: lockgraph::class_id(name),
        }
    }

    /// Acquires the lock, recovering from poisoning (the guarded state
    /// in this workspace is bookkeeping a worker panic must not
    /// invalidate). In debug builds, first records the acquisition in
    /// the global order graph and panics on a lock-order cycle.
    pub fn lock(&self) -> OrderedGuard<'_, T> {
        #[cfg(debug_assertions)]
        lockgraph::acquire(self.class);
        OrderedGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            #[cfg(debug_assertions)]
            class: self.class,
        }
    }

    /// The wrapped mutex, bypassing both order tracking and poison
    /// recovery — for tests that assert on poisoning itself.
    pub fn raw(&self) -> &Mutex<T> {
        &self.inner
    }
}

impl<T> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`OrderedMutex::lock`]; releases the class in the
/// order tracker when dropped.
pub struct OrderedGuard<'a, T> {
    /// `Some` until dropped or consumed by [`OrderedCondvar::wait`].
    inner: Option<MutexGuard<'a, T>>,
    #[cfg(debug_assertions)]
    class: usize,
}

impl<'a, T> OrderedGuard<'a, T> {
    fn guard(&self) -> &MutexGuard<'a, T> {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("guard emptied outside condvar wait"),
        }
    }
}

impl<T> Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard()
    }
}

impl<T> DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("guard emptied outside condvar wait"),
        }
    }
}

impl<T> Drop for OrderedGuard<'_, T> {
    fn drop(&mut self) {
        // Release the lock before un-recording the class, mirroring the
        // record-then-acquire order in `lock`.
        if self.inner.take().is_some() {
            #[cfg(debug_assertions)]
            lockgraph::release(self.class);
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self.guard(), f)
    }
}

/// A [`Condvar`] companion to [`OrderedMutex`]: `wait` releases the
/// guard's lock class for the duration of the wait (the mutex really is
/// unlocked) and re-records the acquisition on wake.
#[derive(Default)]
pub struct OrderedCondvar {
    inner: Condvar,
}

impl OrderedCondvar {
    /// A fresh condition variable.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks until notified, atomically releasing `guard`'s mutex;
    /// returns a re-acquired guard. Recovers from poisoning like
    /// [`OrderedMutex::lock`]. Use in the standard predicate loop —
    /// spurious wakeups happen.
    pub fn wait<'a, T>(&self, mut guard: OrderedGuard<'a, T>) -> OrderedGuard<'a, T> {
        #[cfg(debug_assertions)]
        let class = guard.class;
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("guard emptied outside condvar wait"),
        };
        #[cfg(debug_assertions)]
        lockgraph::release(class);
        drop(guard);
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        #[cfg(debug_assertions)]
        lockgraph::acquire(class);
        OrderedGuard {
            inner: Some(inner),
            #[cfg(debug_assertions)]
            class,
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for OrderedCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedCondvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Every test uses its own class names: the order graph is global to
    // the process, so sharing classes across tests would entangle them.

    #[cfg(debug_assertions)]
    #[test]
    fn inverted_two_lock_order_panics_with_the_named_cycle() {
        let a = OrderedMutex::new("test.inv.a", 0u32);
        let b = OrderedMutex::new("test.inv.b", 0u32);
        {
            let _ga = a.lock();
            let _gb = b.lock(); // records test.inv.a -> test.inv.b
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock(); // would record test.inv.b -> test.inv.a
        }))
        .expect_err("inverted acquisition order must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("lock-order cycle"), "got: {msg}");
        assert!(
            msg.contains("test.inv.a -> test.inv.b -> test.inv.a"),
            "cycle path must be named: {msg}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn caught_violation_leaves_the_graph_acyclic() {
        let a = OrderedMutex::new("test.acyclic.a", ());
        let b = OrderedMutex::new("test.acyclic.b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let inverted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        }));
        assert!(inverted.is_err());
        // The rejected edge was never inserted: the sanctioned order
        // still works, and the inverse still fails (not vice versa).
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        let again = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gb = b.lock();
            let _ga = a.lock();
        }));
        assert!(again.is_err(), "inverse order must keep failing");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn transitive_cycles_are_caught() {
        let a = OrderedMutex::new("test.trans.a", ());
        let b = OrderedMutex::new("test.trans.b", ());
        let c = OrderedMutex::new("test.trans.c", ());
        {
            let _ga = a.lock();
            let _gb = b.lock(); // a -> b
        }
        {
            let _gb = b.lock();
            let _gc = c.lock(); // b -> c
        }
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _gc = c.lock();
            let _ga = a.lock(); // a -> b -> c -> a
        }))
        .expect_err("transitive inversion must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("test.trans.a -> test.trans.b -> test.trans.c -> test.trans.a"),
            "got: {msg}"
        );
    }

    #[test]
    fn same_class_instances_may_nest() {
        let outer = OrderedMutex::new("test.nest", 1u32);
        let inner = OrderedMutex::new("test.nest", 2u32);
        let go = outer.lock();
        let gi = inner.lock();
        assert_eq!(*go + *gi, 3);
    }

    #[test]
    fn guard_reads_and_writes_the_value() {
        let m = OrderedMutex::new("test.rw", vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.lock().len(), 3);
    }

    #[test]
    fn lock_recovers_from_poison_but_raw_observes_it() {
        let m = OrderedMutex::new("test.poison", 7u32);
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.raw().lock().unwrap();
            panic!("poison it");
        }));
        assert!(m.raw().lock().is_err(), "raw() must expose the poison");
        assert_eq!(*m.lock(), 7, "lock() must recover");
    }

    #[test]
    fn condvar_wait_releases_and_reacquires() {
        let done =
            std::sync::Arc::new((OrderedMutex::new("test.cv", false), OrderedCondvar::new()));
        let waker = std::sync::Arc::clone(&done);
        let t = std::thread::spawn(move || {
            *waker.0.lock() = true;
            waker.1.notify_all();
        });
        let mut g = done.0.lock();
        while !*g {
            g = done.1.wait(g);
        }
        drop(g);
        t.join().ok();
        // The waiting thread's held stack is balanced: a fresh ordered
        // acquisition after the wait works (and a debug-build cycle
        // check sees no phantom held class).
        let other = OrderedMutex::new("test.cv.after", ());
        let _ = other.lock();
    }
}
