//! Chaos suite: the paper-artefact pipeline under deterministic disk
//! fault injection.
//!
//! The acceptance gate of the self-healing store: with every injection
//! point exercised — torn writes, rename failures, EIO reads, bit
//! flips, ENOSPC — a cold-then-warm quick-suite run must complete
//! without a panic or a store error, produce CSVs **byte-identical** to
//! a fault-free run, and `verify` + `vacuum` must leave the store
//! scrub-clean within the byte budget. The fault schedule is seeded, so
//! a failure here replays exactly.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use lowvcc_bench::experiments::run_all;
use lowvcc_bench::{
    ExperimentContext, FaultCounts, FaultPlan, FaultyIo, ResultStore, RetryPolicy, StoreIo,
};

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("lowvcc_chaos_{name}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&d);
    d
}

/// Reads every regular file under `dir` (one level, the CSV layout of
/// `run_all`) into a name → bytes map.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("output dir listable") {
        let path = entry.expect("entry").path();
        if path.is_file() {
            files.insert(
                path.file_name().unwrap().to_string_lossy().into_owned(),
                fs::read(&path).expect("artifact readable"),
            );
        }
    }
    assert!(!files.is_empty(), "run_all wrote artifacts to {dir:?}");
    files
}

fn ctx() -> ExperimentContext {
    ExperimentContext::sized(1, 2_000).expect("tiny suite builds")
}

/// The whole gate in one scenario, because its phases feed each other:
/// fault-free baseline → cold+warm chaos runs (byte-identical CSVs,
/// every fault kind injected) → scrub and collect the mauled store back
/// to clean within a byte budget → final run still byte-identical.
#[test]
fn chaos_runs_stay_byte_identical_and_scrub_clean() {
    let root = tmpdir("gate");
    let store_dir = root.join("store");

    // Phase 0 — fault-free baseline: no cache at all.
    let out_clean = root.join("out_clean");
    let clean = run_all(&ctx(), &out_clean).expect("fault-free run");
    let clean_files = dir_bytes(&out_clean);

    // Phase 1 — cold run under an aggressive seeded fault schedule.
    // Rate 400/1024 ≈ 39% of every disk operation faults; the retry
    // policy sleeps zero so the suite stays fast.
    let io = Arc::new(FaultyIo::new(FaultPlan::seeded(0xC4A05, 400)));
    let cold_store = Arc::new(
        ResultStore::open_with(
            &store_dir,
            Arc::clone(&io) as Arc<dyn StoreIo>,
            RetryPolicy::immediate(),
        )
        .expect("chaos store opens"),
    );
    let out_cold = root.join("out_cold");
    let cold = run_all(&ctx().with_cache(Arc::clone(&cold_store)), &out_cold)
        .expect("cold chaos run must complete");
    assert_eq!(
        cold.report, clean.report,
        "cold chaos report byte-identical"
    );
    assert_eq!(cold.sweep, clean.sweep, "cold chaos sweep bit-identical");
    assert_eq!(
        dir_bytes(&out_cold),
        clean_files,
        "cold chaos CSVs identical"
    );

    // Phase 2 — warm run: a fresh handle (cold LRU) over the same mauled
    // directory and the same fault stream.
    let warm_store = Arc::new(
        ResultStore::open_with(
            &store_dir,
            Arc::clone(&io) as Arc<dyn StoreIo>,
            RetryPolicy::immediate(),
        )
        .expect("chaos store reopens"),
    );
    let out_warm = root.join("out_warm");
    let warm = run_all(&ctx().with_cache(Arc::clone(&warm_store)), &out_warm)
        .expect("warm chaos run must complete");
    assert_eq!(
        warm.report, clean.report,
        "warm chaos report byte-identical"
    );
    assert_eq!(
        dir_bytes(&out_warm),
        clean_files,
        "warm chaos CSVs identical"
    );

    // The gate proper: every injection point exercised, and the
    // degradation machinery visibly did work.
    let injected: FaultCounts = io.injected();
    assert!(
        injected.torn_writes > 0,
        "torn write not exercised: {injected:?}"
    );
    assert!(
        injected.rename_fails > 0,
        "rename fail not exercised: {injected:?}"
    );
    assert!(
        injected.read_eio > 0,
        "EIO read not exercised: {injected:?}"
    );
    assert!(
        injected.read_bit_flips > 0,
        "bit flip not exercised: {injected:?}"
    );
    assert!(
        injected.write_enospc > 0,
        "ENOSPC not exercised: {injected:?}"
    );
    let cold_stats = cold_store.stats();
    let warm_stats = warm_store.stats();
    assert!(
        cold_stats.retries + warm_stats.retries > 0,
        "the backoff loop must have engaged (cold {cold_stats:?}, warm {warm_stats:?})"
    );

    // Phase 3 — operability: take a clean handle to the mauled store,
    // corrupt a few surviving records by hand (injected read faults
    // never corrupt the disk — torn writes always fail before their
    // rename), then scrub and collect.
    let admin = ResultStore::open(&store_dir).expect("clean handle opens");
    let mut flipped = 0u64;
    for shard in fs::read_dir(&store_dir).expect("store listable") {
        let shard = shard.expect("entry").path();
        if !shard.is_dir() || shard.ends_with(lowvcc_bench::QUARANTINE_DIR) {
            continue;
        }
        for entry in fs::read_dir(&shard).expect("shard listable") {
            let p = entry.expect("entry").path();
            if flipped < 3 && p.extension().is_some_and(|e| e == "sim") {
                let mut bytes = fs::read(&p).expect("record readable");
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x40;
                fs::write(&p, bytes).expect("record writable");
                flipped += 1;
            }
        }
    }
    assert!(flipped > 0, "chaos runs left records to corrupt");
    let before = admin.summary().expect("summary");
    let scrub = admin.verify().expect("scrub");
    assert_eq!(scrub.scanned, before.entries);
    assert_eq!(
        scrub.quarantined, flipped,
        "exactly the hand-flipped records"
    );
    let rescrub = admin.verify().expect("second scrub");
    assert_eq!(rescrub.quarantined, 0, "scrub-clean after one pass");
    assert!(admin.quarantine_purge().expect("purge") >= flipped);

    // Phase 4 — after all that violence, a plain cached run over the
    // same directory still reproduces the baseline byte-for-byte (and
    // heals the store back to full population).
    let out_final = root.join("out_final");
    let final_store = Arc::new(ResultStore::open(&store_dir).expect("store reopens"));
    let healed = run_all(&ctx().with_cache(final_store), &out_final).expect("final run");
    assert_eq!(healed.report, clean.report, "healed report byte-identical");
    assert_eq!(dir_bytes(&out_final), clean_files, "healed CSVs identical");

    // Phase 5 — collect the repopulated store down to half its bytes;
    // the result must respect the budget and still verify clean.
    let full = admin.verify().expect("post-heal scrub");
    assert_eq!(full.quarantined, 0, "healed records are valid");
    assert!(full.scanned > 1, "healing repopulated the store");
    let budget = full.ok_bytes / 2;
    let vacuumed = admin.vacuum(budget).expect("vacuum");
    assert!(
        vacuumed.kept_bytes <= budget,
        "{vacuumed:?} over budget {budget}"
    );
    assert!(vacuumed.removed > 0, "half budget must evict something");
    let final_scrub = admin.verify().expect("post-vacuum scrub");
    assert_eq!(final_scrub.quarantined, 0, "vacuum left only clean records");
    assert_eq!(final_scrub.ok, vacuumed.kept);

    let _ = fs::remove_dir_all(&root);
}

/// Determinism of the chaos harness itself: the same seed must inject
/// the same faults in the same places, or a chaos failure cannot be
/// replayed for debugging.
#[test]
fn identical_seeds_replay_identical_fault_streams() {
    let counts: Vec<FaultCounts> = (0..2)
        .map(|round| {
            let root = tmpdir(&format!("replay_{round}"));
            let io = Arc::new(FaultyIo::new(FaultPlan::seeded(7, 300)));
            let store = Arc::new(
                ResultStore::open_with(
                    &root,
                    Arc::clone(&io) as Arc<dyn StoreIo>,
                    RetryPolicy::immediate(),
                )
                .expect("store opens"),
            );
            run_all(&ctx().with_cache(Arc::clone(&store)), &root.join("out")).expect("chaos run");
            let injected = io.injected();
            let _ = fs::remove_dir_all(&root);
            injected
        })
        .collect();
    assert_eq!(counts[0], counts[1], "same seed, same fault stream");
    assert!(counts[0].total() > 0, "the schedule really fired");
}
