//! Integration tests for the experiment harness's core path — the same
//! code the `experiments` binary drives: build a context, run F1 and T1,
//! write CSVs into a temp dir, and check the files are produced and
//! non-empty.

use std::fs;
use std::path::PathBuf;

use lowvcc_bench::experiments::{fig1, table1};
use lowvcc_bench::{ExperimentContext, ExperimentError};

fn temp_out(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lowvcc_harness_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn f1_and_t1_produce_nonempty_csvs() {
    let ctx = ExperimentContext::sized(1, 5_000).expect("small suite builds");
    let out = temp_out("f1_t1");

    // F1 — Figure 1 delay curves.
    let f1 = fig1::table(&ctx);
    let f1_path = out.join("fig1.csv");
    f1.write_csv(&f1_path).expect("fig1 CSV writes");

    // T1 — Table 1, qualitative and measured.
    let t1q = table1::qualitative();
    let t1q_path = out.join("table1_qualitative.csv");
    t1q.write_csv(&t1q_path).expect("qualitative CSV writes");

    let t1m = table1::quantitative(&ctx).expect("measured table runs");
    let t1m_path = out.join("table1_quantitative.csv");
    t1m.write_csv(&t1m_path).expect("quantitative CSV writes");

    for (path, min_rows) in [(&f1_path, 13), (&t1q_path, 3), (&t1m_path, 6)] {
        let content =
            fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        assert!(!content.trim().is_empty(), "{} is empty", path.display());
        let lines = content.lines().count();
        assert!(
            lines > min_rows, // header + data rows
            "{} has {lines} lines, want ≥ {}",
            path.display(),
            min_rows + 1
        );
        assert!(
            content.lines().next().unwrap_or_default().contains(','),
            "{} lacks a CSV header",
            path.display()
        );
    }

    let _ = fs::remove_dir_all(&out);
}

#[test]
fn csv_failure_surfaces_as_typed_io_error() {
    // Writing below a path occupied by a *file* must fail — and the typed
    // error carries the offending path.
    let out = temp_out("io_err");
    fs::create_dir_all(&out).expect("temp dir");
    let blocker = out.join("blocker");
    fs::write(&blocker, b"not a directory").expect("blocker file");

    let t = table1::qualitative();
    let bad_path = blocker.join("nested.csv");
    let err = t
        .write_csv(&bad_path)
        .map_err(ExperimentError::io_at(&bad_path))
        .expect_err("write through a file must fail");
    match err {
        ExperimentError::Io { path, .. } => assert_eq!(path, bad_path),
        other => panic!("expected Io error, got {other}"),
    }

    let _ = fs::remove_dir_all(&out);
}
