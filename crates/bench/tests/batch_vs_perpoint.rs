//! Equivalence gate for the batched sweep engine: the figure and table
//! artefacts produced through [`ExperimentContext::run_suite_batch`]
//! must be byte-identical to the legacy per-point path, at every worker
//! count the CI matrix exercises. CSV bytes — not floats with an
//! epsilon — are compared, so even a last-ulp drift in the shared
//! engine state fails the gate.

use std::fs;
use std::path::PathBuf;

use lowvcc_baselines::{rows_from_results, technique_configs};
use lowvcc_bench::experiments::{fig11a, sweep, table1};
use lowvcc_bench::{ExperimentContext, TextTable};
use lowvcc_core::Parallelism;
use lowvcc_sram::Millivolts;

fn ctx_with(jobs: usize) -> ExperimentContext {
    ExperimentContext::sized(1, 3_000)
        .expect("preset suite")
        .with_parallelism(Parallelism::threads(jobs))
}

/// Round-trips a table through the CSV writer and returns the bytes.
fn csv_bytes(table: &TextTable, name: &str) -> Vec<u8> {
    let path: PathBuf =
        std::env::temp_dir().join(format!("lowvcc_bvp_{}_{name}.csv", std::process::id()));
    table.write_csv(&path).expect("csv written");
    let bytes = fs::read(&path).expect("csv read back");
    fs::remove_file(&path).ok();
    bytes
}

#[test]
fn batched_sweep_matches_per_point_at_every_worker_count() {
    for jobs in [1, 2, 5] {
        let ctx = ctx_with(jobs);

        // F11a is analytic (no simulation): identical bytes before and
        // after the sweeps guard that neither path mutates the context.
        let f11a_before = csv_bytes(&fig11a::table(&ctx), "f11a_before");

        let batched = sweep::run_sweep(&ctx).expect("batched sweep");
        let legacy = sweep::run_sweep_per_point(&ctx).expect("per-point sweep");
        assert_eq!(batched, legacy, "sweep points diverged at jobs={jobs}");

        let b11b = csv_bytes(&sweep::fig11b_table(&batched), "f11b_batched");
        let l11b = csv_bytes(&sweep::fig11b_table(&legacy), "f11b_legacy");
        assert_eq!(b11b, l11b, "F11b CSV diverged at jobs={jobs}");

        let b12 = csv_bytes(&sweep::fig12_table(&batched), "f12_batched");
        let l12 = csv_bytes(&sweep::fig12_table(&legacy), "f12_legacy");
        assert_eq!(b12, l12, "F12 CSV diverged at jobs={jobs}");

        let f11a_after = csv_bytes(&fig11a::table(&ctx), "f11a_after");
        assert_eq!(f11a_before, f11a_after, "context mutated at jobs={jobs}");
    }
}

#[test]
fn batched_table1_matches_per_config_runs() {
    let vcc = Millivolts::new(500).expect("in range");
    for jobs in [1, 2, 5] {
        let ctx = ctx_with(jobs);

        let batched_rows = table1::quantitative_rows_at(&ctx, vcc).expect("batched rows");

        let configs = technique_configs(ctx.core, &ctx.timing, vcc);
        let suites: Vec<_> = configs
            .iter()
            .map(|tc| ctx.run_suite(&tc.cfg).expect("per-config suite"))
            .collect();
        let legacy_rows = rows_from_results(&configs, &suites);

        let b = csv_bytes(&table1::rows_table(&batched_rows), "t1_batched");
        let l = csv_bytes(&table1::rows_table(&legacy_rows), "t1_legacy");
        assert_eq!(b, l, "Table 1 CSV diverged at jobs={jobs}");
    }
}
