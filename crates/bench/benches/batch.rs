//! Batched sweep engine vs the legacy per-point path — the bench behind
//! the `perf-trajectory` CI job. One 20k-uop SPEC-int trace replayed
//! under the paper's full grid (13 voltage points × 3 mechanisms): the
//! per-point side pays a fresh engine and a fresh decode per
//! configuration, the batched side one decode and a reset-reused
//! workspace for the whole grid.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lowvcc_core::{run_batch, CoreConfig, EngineWorkspace, Mechanism, SimConfig, Simulator};
use lowvcc_sram::{CycleTimeModel, PAPER_SWEEP};
use lowvcc_trace::{TraceArena, TraceSpec, WorkloadFamily};

const TRACE_LEN: usize = 20_000;

fn full_grid() -> Vec<SimConfig> {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    PAPER_SWEEP
        .iter()
        .flat_map(|vcc| {
            [Mechanism::Baseline, Mechanism::Iraw, Mechanism::IdealLogic]
                .map(|m| SimConfig::at_vcc(core, &timing, vcc, m))
        })
        .collect()
}

fn bench_batch_vs_per_point(c: &mut Criterion) {
    let trace = TraceSpec::new(WorkloadFamily::SpecInt, 0, TRACE_LEN)
        .build()
        .expect("preset params");
    let cfgs = full_grid();
    let mut g = c.benchmark_group("batch_sweep_full_grid");
    g.throughput(Throughput::Elements((TRACE_LEN * cfgs.len()) as u64));
    g.sample_size(10);

    g.bench_function("per_point", |b| {
        b.iter(|| {
            for cfg in &cfgs {
                let sim = Simulator::new(cfg.clone()).expect("valid config");
                black_box(sim.run(&trace).expect("simulation completes"));
            }
        });
    });

    g.bench_function("batched", |b| {
        let mut ws = EngineWorkspace::new();
        b.iter(|| {
            // Decode-once is part of the measured model: the arena build
            // sits inside the timed region, amortized over the grid.
            let arena = TraceArena::from_trace(&trace);
            black_box(run_batch(&cfgs, &arena, &mut ws).expect("simulation completes"));
        });
    });
    g.finish();
}

criterion_group!(batch, bench_batch_vs_per_point);
criterion_main!(batch);
