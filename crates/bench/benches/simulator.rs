//! Whole-simulator throughput benches: uops simulated per second for each
//! mechanism, plus the Faulty Bits / Extra Bypass baseline configurations,
//! the lazy-vs-eager scoreboard microbenches, and the `long_trace_200k`
//! engine-throughput group that tracks the event-driven fast path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lowvcc_baselines::{ExtraBypassDesign, ExtraBypassScope, FaultyBitsDesign, FaultyBitsScope};
use lowvcc_core::{CoreConfig, Mechanism, SimConfig, Simulator};
use lowvcc_sram::{voltage::mv, CycleTimeModel};
use lowvcc_trace::{Reg, Trace, TraceSpec, Uop, UopKind, WorkloadFamily};
use lowvcc_uarch::scoreboard::{IrawWindow, Scoreboard};

const TRACE_LEN: usize = 20_000;

fn trace() -> Trace {
    TraceSpec::new(WorkloadFamily::SpecInt, 0, TRACE_LEN)
        .build()
        .expect("preset params")
}

fn bench_mechanisms(c: &mut Criterion) {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let t = trace();
    let mut g = c.benchmark_group("simulator_throughput");
    g.throughput(Throughput::Elements(TRACE_LEN as u64));
    g.sample_size(10);
    for (name, mech) in [
        ("baseline_500mv", Mechanism::Baseline),
        ("iraw_500mv", Mechanism::Iraw),
        ("ideal_logic_500mv", Mechanism::IdealLogic),
    ] {
        let cfg = SimConfig::at_vcc(core, &timing, mv(500), mech);
        let sim = Simulator::new(cfg).expect("valid config");
        g.bench_function(name, |b| {
            b.iter(|| black_box(sim.run(&t).expect("simulation completes")));
        });
    }
    g.finish();
}

fn bench_baseline_designs(c: &mut Criterion) {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let t = trace();
    let mut g = c.benchmark_group("baseline_designs");
    g.throughput(Throughput::Elements(TRACE_LEN as u64));
    g.sample_size(10);

    let fb = FaultyBitsDesign::four_sigma(FaultyBitsScope::AllBlocksHypothetical);
    let sim = Simulator::new(fb.sim_config(core, &timing, mv(450), 1)).expect("valid config");
    g.bench_function("faulty_bits_4sigma_450mv", |b| {
        b.iter(|| black_box(sim.run(&t).expect("simulation completes")));
    });

    let eb = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);
    let sim = Simulator::new(eb.sim_config(core, &timing, mv(450))).expect("valid config");
    g.bench_function("extra_bypass_450mv", |b| {
        b.iter(|| black_box(sim.run(&t).expect("simulation completes")));
    });
    g.finish();
}

/// Eager reference scoreboard: what the engine used before the lazy
/// representation — every register physically shifted every cycle. Kept
/// here (not in the library) purely as the bench baseline.
struct EagerScoreboard {
    regs: Vec<u32>,
    width: u32,
    mask: u32,
}

impl EagerScoreboard {
    fn new(width: u32) -> Self {
        let mask = (1u32 << width) - 1;
        Self {
            regs: vec![mask; usize::from(lowvcc_trace::NUM_REGS)],
            width,
            mask,
        }
    }

    fn set_producer(&mut self, reg: Reg, pattern: u32) {
        self.regs[usize::from(reg.index())] = pattern;
    }

    fn is_ready(&self, reg: Reg) -> bool {
        self.regs[usize::from(reg.index())] >> (self.width - 1) & 1 == 1
    }

    fn tick(&mut self) {
        for r in &mut self.regs {
            *r = ((*r << 1) | (*r & 1)) & self.mask;
        }
    }
}

/// Lazy vs eager scoreboard: the identical producer/tick/read sequence,
/// so the delta is exactly the cost of shifting every register per cycle.
fn bench_scoreboard_tick(c: &mut Criterion) {
    const CYCLES: u64 = 4_096;
    let window = IrawWindow {
        bypass_levels: 1,
        bubble: 1,
    };
    let reg = |i: u8| Reg::new(i).expect("in range");
    let mut g = c.benchmark_group("scoreboard_tick");
    g.throughput(Throughput::Elements(CYCLES));

    g.bench_function("lazy", |b| {
        b.iter(|| {
            let mut sb = Scoreboard::new(7);
            for i in 0..CYCLES {
                let r = reg((i % 32) as u8);
                sb.set_producer(r, 3, Some(window));
                sb.tick();
                black_box(sb.is_ready(r));
            }
            black_box(sb)
        });
    });

    g.bench_function("eager", |b| {
        // Same Figure 8 pattern, pre-built once (being generous to the
        // eager version: its per-cycle cost is purely the full shift).
        let pattern = {
            let mut probe = Scoreboard::new(7);
            probe.set_producer(reg(0), 3, Some(window));
            probe.pattern(reg(0))
        };
        b.iter(|| {
            let mut sb = EagerScoreboard::new(7);
            for i in 0..CYCLES {
                let r = reg((i % 32) as u8);
                sb.set_producer(r, pattern);
                sb.tick();
                black_box(sb.is_ready(r));
            }
            black_box(sb.is_ready(reg(0)))
        });
    });
    g.finish();
}

const LONG_TRACE_LEN: usize = 200_000;

/// Dependent divide clusters: long structural/data stalls the
/// cycle-skipping fast path jumps over.
fn div_chain_trace(n: usize) -> Trace {
    let reg = |i: u8| Reg::new(i).expect("in range");
    let mut uops = Vec::with_capacity(n);
    while uops.len() < n {
        let i = uops.len();
        let d = reg((16 + (i % 8)) as u8);
        let mut div = Uop::alu(0x40_0000 + (i as u64 % 16) * 4, Some(d), Some(reg(0)), None);
        div.kind = UopKind::IntDiv;
        uops.push(div);
        uops.push(Uop::alu(0x40_0040, Some(reg(40)), Some(d), None));
        uops.push(Uop::alu(0x40_0044, Some(reg(41)), Some(reg(40)), None));
    }
    uops.truncate(n);
    Trace::new("div_chain", uops)
}

/// Strided loads over a 16 MB footprint: every access misses the DL0 and
/// most miss the UL1 — the memory-bound shape that dominates paper-scale
/// suites at the fast (IRAW) clock.
fn mem_stream_trace(n: usize) -> Trace {
    let reg = |i: u8| Reg::new(i).expect("in range");
    let mut uops = Vec::with_capacity(n);
    while uops.len() < n {
        let i = (uops.len() / 2) as u64;
        let addr = 0x100_0000 + i * 72 % (1 << 24);
        uops.push(Uop::load(0x40_0000 + (i % 16) * 4, reg(20), None, addr, 8));
        uops.push(Uop::alu(0x40_0040, Some(reg(21)), Some(reg(20)), None));
    }
    uops.truncate(n);
    Trace::new("mem_stream", uops)
}

/// Engine throughput on 200k-uop traces — the number the fast path is
/// judged on. Three shapes: the balanced SPEC-int mix, a divide-bound
/// chain, and a memory-bound stream (the latter two are where the
/// event-driven skip dominates).
fn bench_long_traces(c: &mut Criterion) {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let mut g = c.benchmark_group("long_trace_200k");
    g.throughput(Throughput::Elements(LONG_TRACE_LEN as u64));
    g.sample_size(10);
    let specint = TraceSpec::new(WorkloadFamily::SpecInt, 0, LONG_TRACE_LEN)
        .build()
        .expect("preset params");
    for (name, t) in [
        ("specint_iraw_500mv", &specint),
        ("div_chain_iraw_500mv", &div_chain_trace(LONG_TRACE_LEN)),
        ("mem_stream_iraw_500mv", &mem_stream_trace(LONG_TRACE_LEN)),
    ] {
        let cfg = SimConfig::at_vcc(core, &timing, mv(500), Mechanism::Iraw);
        let sim = Simulator::new(cfg).expect("valid config");
        g.bench_function(name, |b| {
            b.iter(|| black_box(sim.run(t).expect("simulation completes")));
        });
    }
    let cfg = SimConfig::at_vcc(core, &timing, mv(500), Mechanism::Baseline);
    let sim = Simulator::new(cfg).expect("valid config");
    g.bench_function("specint_baseline_500mv", |b| {
        b.iter(|| black_box(sim.run(&specint).expect("simulation completes")));
    });
    g.finish();
}

criterion_group!(
    simulator,
    bench_mechanisms,
    bench_baseline_designs,
    bench_scoreboard_tick,
    bench_long_traces
);
criterion_main!(simulator);
