//! Whole-simulator throughput benches: uops simulated per second for each
//! mechanism, plus the Faulty Bits / Extra Bypass baseline configurations.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lowvcc_baselines::{ExtraBypassDesign, ExtraBypassScope, FaultyBitsDesign, FaultyBitsScope};
use lowvcc_core::{CoreConfig, Mechanism, SimConfig, Simulator};
use lowvcc_sram::{voltage::mv, CycleTimeModel};
use lowvcc_trace::{Trace, TraceSpec, WorkloadFamily};

const TRACE_LEN: usize = 20_000;

fn trace() -> Trace {
    TraceSpec::new(WorkloadFamily::SpecInt, 0, TRACE_LEN)
        .build()
        .expect("preset params")
}

fn bench_mechanisms(c: &mut Criterion) {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let t = trace();
    let mut g = c.benchmark_group("simulator_throughput");
    g.throughput(Throughput::Elements(TRACE_LEN as u64));
    g.sample_size(10);
    for (name, mech) in [
        ("baseline_500mv", Mechanism::Baseline),
        ("iraw_500mv", Mechanism::Iraw),
        ("ideal_logic_500mv", Mechanism::IdealLogic),
    ] {
        let cfg = SimConfig::at_vcc(core, &timing, mv(500), mech);
        let sim = Simulator::new(cfg).expect("valid config");
        g.bench_function(name, |b| {
            b.iter(|| black_box(sim.run(&t).expect("simulation completes")));
        });
    }
    g.finish();
}

fn bench_baseline_designs(c: &mut Criterion) {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let t = trace();
    let mut g = c.benchmark_group("baseline_designs");
    g.throughput(Throughput::Elements(TRACE_LEN as u64));
    g.sample_size(10);

    let fb = FaultyBitsDesign::four_sigma(FaultyBitsScope::AllBlocksHypothetical);
    let sim = Simulator::new(fb.sim_config(core, &timing, mv(450), 1)).expect("valid config");
    g.bench_function("faulty_bits_4sigma_450mv", |b| {
        b.iter(|| black_box(sim.run(&t).expect("simulation completes")));
    });

    let eb = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);
    let sim = Simulator::new(eb.sim_config(core, &timing, mv(450))).expect("valid config");
    g.bench_function("extra_bypass_450mv", |b| {
        b.iter(|| black_box(sim.run(&t).expect("simulation completes")));
    });
    g.finish();
}

criterion_group!(simulator, bench_mechanisms, bench_baseline_designs);
criterion_main!(simulator);
