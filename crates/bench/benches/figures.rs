//! Criterion benches, one per paper artefact: regenerating each figure and
//! table end-to-end on the quick suite. Wall-clock here tracks how costly
//! each reproduction artefact is, and guards against performance
//! regressions in the experiment pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowvcc_bench::experiments::{fig1, fig11a, stalls, sweep, table1};
use lowvcc_bench::ExperimentContext;

fn ctx() -> ExperimentContext {
    ExperimentContext::quick().expect("quick suite builds")
}

fn bench_fig1(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig1_delay_curves", |b| {
        b.iter(|| black_box(fig1::table(&ctx)));
    });
}

fn bench_fig11a(c: &mut Criterion) {
    let ctx = ctx();
    c.bench_function("fig11a_cycle_time", |b| {
        b.iter(|| black_box(fig11a::table(&ctx)));
    });
}

fn bench_fig11b_and_fig12(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.bench_function("fig11b_fig12_full_sweep", |b| {
        b.iter(|| {
            let points = sweep::run_sweep(&ctx).expect("sweep runs");
            black_box((sweep::fig11b_table(&points), sweep::fig12_table(&points)))
        });
    });
    g.finish();
}

fn bench_table1(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("table1_quantitative", |b| {
        b.iter(|| black_box(table1::quantitative(&ctx).expect("table runs")));
    });
    g.finish();
}

fn bench_stalls(c: &mut Criterion) {
    let ctx = ctx();
    let mut g = c.benchmark_group("stalls");
    g.sample_size(10);
    g.bench_function("stall_attribution_575mv", |b| {
        b.iter(|| black_box(stalls::measure(&ctx).expect("measurement runs")));
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig1,
    bench_fig11a,
    bench_fig11b_and_fig12,
    bench_table1,
    bench_stalls
);
criterion_main!(figures);
