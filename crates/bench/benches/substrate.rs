//! Micro-benchmarks of the substrate crates: timing models, variation
//! math, caches, scoreboard, predictors and trace generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use lowvcc_sram::variation::cell_fail_probability;
use lowvcc_sram::{voltage::mv, Bitcell8T, CycleTimeModel, Figure1Series};
use lowvcc_trace::{Reg, SimRng, TraceSpec, WorkloadFamily};
use lowvcc_uarch::bpred::{Bimodal, BranchPredictor};
use lowvcc_uarch::cache::{CacheConfig, SetAssocCache};
use lowvcc_uarch::scoreboard::{IrawWindow, Scoreboard};

fn bench_timing_model(c: &mut Criterion) {
    let model = CycleTimeModel::silverthorne_45nm();
    c.bench_function("cycle_time_model_sweep", |b| {
        b.iter(|| black_box(Figure1Series::generate(&model)));
    });
    c.bench_function("frequency_gain_single_point", |b| {
        b.iter(|| black_box(model.frequency_gain(mv(500))));
    });
}

fn bench_variation_math(c: &mut Criterion) {
    let cell = Bitcell8T::silverthorne_45nm();
    let budget = cell.write_delay_at_sigma(mv(450), 4.0);
    c.bench_function("cell_fail_probability_bisection", |b| {
        b.iter(|| black_box(cell_fail_probability(&cell, mv(450), budget)));
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("dl0_access_hit_stream", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::silverthorne_dl0()).unwrap();
        for line in 0..64u64 {
            let _ = cache.fill(line);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(cache.access(i))
        });
    });
    c.bench_function("ul1_fill_evict_churn", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::silverthorne_ul1()).unwrap();
        let mut line = 0u64;
        b.iter(|| {
            line += 8191; // walk sets
            black_box(cache.fill(line))
        });
    });
}

fn bench_scoreboard(c: &mut Criterion) {
    c.bench_function("scoreboard_tick_64_regs", |b| {
        let mut sb = Scoreboard::new(7);
        sb.set_producer(
            Reg::new(5).unwrap(),
            3,
            Some(IrawWindow {
                bypass_levels: 1,
                bubble: 1,
            }),
        );
        b.iter(|| {
            sb.tick();
            black_box(sb.is_ready(Reg::new(5).unwrap()))
        });
    });
}

fn bench_bpred(c: &mut Criterion) {
    c.bench_function("bimodal_predict_update", |b| {
        let mut bp = Bimodal::new(4096);
        let mut rng = SimRng::seed_from(3);
        b.iter(|| {
            let pc = rng.below(1 << 16) << 2;
            let (pred, _) = bp.predict(pc);
            black_box(bp.update(pc, pred ^ rng.chance(0.1)))
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    g.sample_size(20);
    for family in [WorkloadFamily::SpecInt, WorkloadFamily::Server] {
        g.bench_function(format!("generate_{}_20k", family.name()), |b| {
            b.iter(|| {
                black_box(
                    TraceSpec::new(family, 1, 20_000)
                        .build()
                        .expect("preset params"),
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    substrate,
    bench_timing_model,
    bench_variation_math,
    bench_cache,
    bench_scoreboard,
    bench_bpred,
    bench_trace_generation
);
criterion_main!(substrate);
