//! Sweep calibration: suite speedups at the paper's anchor voltages.
use lowvcc_core::{compare_mechanisms, CoreConfig};
use lowvcc_sram::{voltage::mv, CycleTimeModel};
use lowvcc_trace::{TraceSpec, WorkloadFamily};

fn main() {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let len = 100_000;
    let traces: Vec<_> = WorkloadFamily::all()
        .iter()
        .flat_map(|&f| (0..2).map(move |s| TraceSpec::new(f, s, len).build().unwrap()))
        .collect();
    for v in [575u32, 500, 450, 400] {
        let cmp = compare_mechanisms(core, &timing, mv(v), &traces).unwrap();
        let mut stall = (0.0, 0.0, 0.0, 0.0);
        let n = cmp.iraw.per_trace.len() as f64;
        for (_, r) in &cmp.iraw.per_trace {
            let f = r.stats.stall_fractions();
            stall.0 += f.0 / n;
            stall.1 += f.1 / n;
            stall.2 += f.2 / n;
            stall.3 += f.3 / n;
        }
        println!("{v} mV: freq_gain={:.3} speedup={:.3} delayed={:.4} rf={:.4} iq={:.4} dl0={:.4} oth={:.4} ipc_iraw={:.3}",
            cmp.frequency_gain, cmp.speedup.total_time, cmp.iraw.delayed_instruction_fraction(),
            stall.0, stall.1, stall.2, stall.3, cmp.iraw.aggregate_ipc());
    }
}
