//! Core configuration: the Silverthorne-like in-order machine and the
//! clocking/mechanism choices of one simulation.

use lowvcc_sram::{CycleTimeModel, Millivolts, Picoseconds, TimingLimiter};
use lowvcc_uarch::cache::CacheConfig;

use crate::error::ConfigError;

/// Static machine parameters (structure sizes, widths, latencies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions allocated to the IQ per cycle (the paper's `AI`).
    pub alloc_width: usize,
    /// Oldest instructions considered for issue (the paper's `ICI`).
    pub issue_width: usize,
    /// IQ capacity (power of two).
    pub iq_entries: usize,
    /// Depth of the front end between fetch and IQ allocation.
    pub front_end_stages: u32,
    /// Bypass network levels (the paper's example uses 1).
    pub bypass_levels: u32,
    /// Scoreboard shift-register width in bits (baseline width + the two
    /// IRAW extension bits).
    pub scoreboard_width: u32,
    /// First-level instruction cache.
    pub il0: CacheConfig,
    /// First-level data cache.
    pub dl0: CacheConfig,
    /// Unified second-level cache.
    pub ul1: CacheConfig,
    /// Instruction TLB entries.
    pub itlb_entries: usize,
    /// Data TLB entries.
    pub dtlb_entries: usize,
    /// Branch predictor entries (2-bit counters).
    pub bp_entries: usize,
    /// Branch target buffer entries.
    pub btb_entries: usize,
    /// Return stack entries.
    pub rsb_entries: usize,
    /// Fill buffer entries.
    pub fb_entries: usize,
    /// Write-combining / eviction buffer entries.
    pub wcb_entries: usize,
    /// Store Table physical entries (sized for the largest `N`).
    pub stable_max_entries: usize,
    /// Single-cycle integer ALU latency.
    pub lat_alu: u32,
    /// Pipelined integer multiply latency.
    pub lat_mul: u32,
    /// Unpipelined integer divide latency.
    pub lat_div: u32,
    /// FP add latency.
    pub lat_fp_add: u32,
    /// FP multiply latency.
    pub lat_fp_mul: u32,
    /// Unpipelined FP divide latency.
    pub lat_fp_div: u32,
    /// DL0 load-to-use latency (hit).
    pub lat_dl0_hit: u32,
    /// UL1 access latency (cycles; on-chip SRAM scales with the clock).
    pub lat_ul1: u32,
    /// Page-walk penalty on a TLB miss (cycles).
    pub page_walk_cycles: u32,
    /// Front-end redirect penalty on a mispredicted branch (cycles).
    pub mispredict_penalty: u32,
    /// Next-line instruction prefetch into the IL0 (the production core
    /// has one; without it straight-line code is compulsory-miss bound).
    pub il0_next_line_prefetch: bool,
    /// Off-chip memory latency in nanoseconds — **constant in time**, so
    /// its cycle count grows with frequency (paper §5.2 observation (i)).
    pub memory_latency_ns: f64,
}

impl CoreConfig {
    /// The Silverthorne-like preset used throughout the evaluation:
    /// 2-wide in-order, 32-entry IQ, 32 KB IL0 / 24 KB DL0 / 512 KB UL1,
    /// 16-entry TLBs, 4K-entry bimodal BP, 8-entry RSB/FB/WCB.
    #[must_use]
    pub fn silverthorne() -> Self {
        Self {
            fetch_width: 2,
            alloc_width: 2,
            issue_width: 2,
            iq_entries: 32,
            front_end_stages: 6,
            bypass_levels: 1,
            scoreboard_width: 7,
            il0: CacheConfig::silverthorne_il0(),
            dl0: CacheConfig::silverthorne_dl0(),
            ul1: CacheConfig::silverthorne_ul1(),
            itlb_entries: 16,
            dtlb_entries: 16,
            bp_entries: 4096,
            btb_entries: 512,
            rsb_entries: 8,
            fb_entries: 8,
            wcb_entries: 8,
            stable_max_entries: 2,
            lat_alu: 1,
            lat_mul: 4,
            lat_div: 16,
            lat_fp_add: 4,
            lat_fp_mul: 4,
            lat_fp_div: 24,
            lat_dl0_hit: 3,
            lat_ul1: 9,
            page_walk_cycles: 30,
            mispredict_penalty: 11,
            il0_next_line_prefetch: true,
            memory_latency_ns: 90.0,
        }
    }

    /// Validates widths and structure sizes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.fetch_width == 0 || self.alloc_width == 0 || self.issue_width == 0 {
            return Err(ConfigError::ZeroWidth);
        }
        if !self.iq_entries.is_power_of_two() {
            return Err(ConfigError::IqNotPowerOfTwo {
                entries: self.iq_entries,
            });
        }
        for (which, cache) in [("IL0", &self.il0), ("DL0", &self.dl0), ("UL1", &self.ul1)] {
            cache
                .validate()
                .map_err(|source| ConfigError::Cache { which, source })?;
        }
        if self.scoreboard_width < self.bypass_levels + 2 {
            return Err(ConfigError::ScoreboardMissingWindowBits {
                width: self.scoreboard_width,
                bypass_levels: self.bypass_levels,
            });
        }
        if self.stable_max_entries == 0 {
            return Err(ConfigError::NoStoreTableEntries);
        }
        if self.memory_latency_ns <= 0.0 {
            return Err(ConfigError::NonPositiveMemoryLatency {
                latency_ns: self.memory_latency_ns,
            });
        }
        Ok(())
    }

    /// Execution latency of a uop kind.
    #[must_use]
    pub fn latency_of(&self, kind: lowvcc_trace::UopKind) -> u32 {
        use lowvcc_trace::UopKind::{
            Branch, Call, FpAdd, FpDiv, FpMul, IntAlu, IntDiv, IntMul, Load, Nop, Ret, Store,
        };
        match kind {
            IntAlu | Branch | Call | Ret | Nop | Store => self.lat_alu,
            IntMul => self.lat_mul,
            IntDiv => self.lat_div,
            FpAdd => self.lat_fp_add,
            FpMul => self.lat_fp_mul,
            FpDiv => self.lat_fp_div,
            Load => self.lat_dl0_hit,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::silverthorne()
    }
}

/// Which clocking discipline and avoidance hardware a run uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mechanism {
    /// Conventional write-limited clock; no IRAW hardware, no stalls.
    Baseline,
    /// IRAW avoidance: interrupted writes, faster clock, `N`-cycle
    /// stabilization enforced by the per-block mechanisms.
    Iraw,
    /// Logic-limited clock with no SRAM-safety mechanism at all — the
    /// unconstrained reference of Figures 11a/12 (not buildable silicon
    /// below the write crossover; used for reference curves only).
    IdealLogic,
}

/// Full per-run simulation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Machine parameters.
    pub core: CoreConfig,
    /// Supply voltage of the run.
    pub vcc: Millivolts,
    /// Mechanism in force.
    pub mechanism: Mechanism,
    /// Cycle time (derived from `mechanism` + `vcc` via
    /// [`SimConfig::at_vcc`], or overridden for the baseline crates).
    pub cycle_time: Picoseconds,
    /// Stabilization cycles `N` (0 disables every IRAW mechanism).
    pub stabilization_cycles: u32,
    /// Extra cycles each register-file write occupies its write port
    /// (Extra Bypass baseline: 1; otherwise 0).
    pub extra_write_port_cycles: u32,
    /// Cache lines to disable per cache (Faulty Bits baseline), as
    /// `(il0, dl0, ul1)` line counts.
    pub disabled_lines: (usize, usize, usize),
    /// Seed for fault-map placement.
    pub fault_seed: u64,
}

impl SimConfig {
    /// Builds the canonical configuration for `mechanism` at `vcc` using
    /// the calibrated timing model: cycle time from the limiter, `N` from
    /// the stabilization model (IRAW only).
    #[must_use]
    pub fn at_vcc(
        core: CoreConfig,
        timing: &CycleTimeModel,
        vcc: Millivolts,
        mechanism: Mechanism,
    ) -> Self {
        let (limiter, n) = match mechanism {
            Mechanism::Baseline => (TimingLimiter::WriteLimited, 0),
            Mechanism::Iraw => (TimingLimiter::Iraw, timing.stabilization_cycles(vcc)),
            Mechanism::IdealLogic => (TimingLimiter::Logic, 0),
        };
        Self {
            core,
            vcc,
            mechanism,
            cycle_time: timing.cycle_time(vcc, limiter),
            stabilization_cycles: n,
            extra_write_port_cycles: 0,
            disabled_lines: (0, 0, 0),
            fault_seed: 0,
        }
    }

    /// Builds the (Baseline, Iraw) configuration pair at `vcc` — the two
    /// runs every sweep point compares. The single construction site for
    /// the voltage→config mapping shared by the sweep, the mechanism
    /// comparison, and the batched sweep grid.
    #[must_use]
    pub fn mechanism_pair(
        core: CoreConfig,
        timing: &CycleTimeModel,
        vcc: Millivolts,
    ) -> (Self, Self) {
        (
            Self::at_vcc(core, timing, vcc, Mechanism::Baseline),
            Self::at_vcc(core, timing, vcc, Mechanism::Iraw),
        )
    }

    /// Off-chip memory latency in cycles at this clock.
    #[must_use]
    pub fn memory_latency_cycles(&self) -> u64 {
        (self.core.memory_latency_ns * 1000.0 / self.cycle_time.picos()).ceil() as u64
    }

    /// Whether any IRAW avoidance hardware is active.
    #[must_use]
    pub fn iraw_active(&self) -> bool {
        self.stabilization_cycles > 0
    }

    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`CoreConfig::validate`] and checks the cycle time.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.core.validate()?;
        if self.cycle_time.picos() <= 0.0 {
            return Err(ConfigError::NonPositiveCycleTime);
        }
        // Every short-latency producer pattern must fit the shift register
        // with a trailing ready bit: latency + bypass + N < width. Longer
        // producers (divides, load misses) use completion events instead.
        let max_short = self
            .core
            .lat_alu
            .max(self.core.lat_mul)
            .max(self.core.lat_fp_add)
            .max(self.core.lat_fp_mul)
            .max(self.core.lat_dl0_hit);
        if max_short + self.core.bypass_levels + self.stabilization_cycles
            >= self.core.scoreboard_width
        {
            return Err(ConfigError::ScoreboardTooNarrow {
                width: self.core.scoreboard_width,
                max_latency: max_short,
                bypass_levels: self.core.bypass_levels,
                stabilization_cycles: self.stabilization_cycles,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;
    use lowvcc_trace::UopKind;

    #[test]
    fn silverthorne_preset_validates() {
        let cfg = CoreConfig::silverthorne();
        cfg.validate().unwrap();
        assert_eq!(cfg.issue_width, 2);
        assert_eq!(cfg.iq_entries, 32);
    }

    #[test]
    fn latency_table_covers_all_kinds() {
        let cfg = CoreConfig::silverthorne();
        for kind in UopKind::all() {
            assert!(cfg.latency_of(kind) >= 1);
        }
        assert!(cfg.latency_of(UopKind::IntDiv) > cfg.latency_of(UopKind::IntMul));
        assert_eq!(cfg.latency_of(UopKind::Load), cfg.lat_dl0_hit);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = CoreConfig::silverthorne();
        cfg.iq_entries = 30;
        assert!(cfg.validate().is_err());
        let mut cfg2 = CoreConfig::silverthorne();
        cfg2.scoreboard_width = 2;
        assert!(cfg2.validate().is_err());
        let mut cfg3 = CoreConfig::silverthorne();
        cfg3.memory_latency_ns = 0.0;
        assert!(cfg3.validate().is_err());
    }

    #[test]
    fn at_vcc_derives_clock_and_n() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let core = CoreConfig::silverthorne();
        let base = SimConfig::at_vcc(core, &timing, mv(500), Mechanism::Baseline);
        let iraw = SimConfig::at_vcc(core, &timing, mv(500), Mechanism::Iraw);
        let ideal = SimConfig::at_vcc(core, &timing, mv(500), Mechanism::IdealLogic);
        assert!(base.cycle_time > iraw.cycle_time);
        assert!(iraw.cycle_time > ideal.cycle_time);
        assert_eq!(base.stabilization_cycles, 0);
        assert_eq!(iraw.stabilization_cycles, 1);
        assert!(iraw.iraw_active());
        assert!(!base.iraw_active());
        base.validate().unwrap();
    }

    #[test]
    fn iraw_off_at_600mv_and_above() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let core = CoreConfig::silverthorne();
        let cfg = SimConfig::at_vcc(core, &timing, mv(600), Mechanism::Iraw);
        assert_eq!(cfg.stabilization_cycles, 0, "paper §4.1.3 rule");
    }

    #[test]
    fn memory_cycles_scale_with_frequency() {
        // Constant-time memory: the faster IRAW clock sees *more* cycles of
        // latency at high Vcc, and far fewer at the collapsed baseline
        // clock at low Vcc.
        let timing = CycleTimeModel::silverthorne_45nm();
        let core = CoreConfig::silverthorne();
        let fast = SimConfig::at_vcc(core, &timing, mv(700), Mechanism::IdealLogic);
        let slow = SimConfig::at_vcc(core, &timing, mv(400), Mechanism::Baseline);
        assert!(fast.memory_latency_cycles() > 100);
        assert!(slow.memory_latency_cycles() < 10);
    }
}
