//! The IRAW controller: per-Vcc reconfiguration of every avoidance
//! mechanism (paper §4.1.3, §4.2–4.4 reconfiguration rules).
//!
//! The paper stresses that adapting to a Vcc change is cheap: the
//! scoreboard just initializes its shift registers with a different
//! pattern, the IQ recomputes one threshold, the Store Table enables a
//! different number of entries, and the post-fill counters get a new
//! initial value. [`IrawController::settings_for`] centralizes those
//! rules; `SimConfig::at_vcc` applies them when building a run.

use lowvcc_sram::{CycleTimeModel, Millivolts};

/// Per-block mechanism settings at one operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrawSettings {
    /// Stabilization cycles `N` (0 = IRAW off).
    pub n: u32,
    /// Scoreboard bubble bits appended after the bypass bits (= `N`).
    pub scoreboard_bubble: u32,
    /// IQ issue threshold `ICI + AI·N` for the Silverthorne widths.
    pub iq_threshold: usize,
    /// Store Table entries to enable (`stores/cycle × N`).
    pub stable_entries: usize,
    /// Post-fill stall counter initial value for cache-like blocks.
    pub fill_stall_cycles: u32,
    /// Whether prediction-only blocks need any action (always false —
    /// the paper's point).
    pub prediction_blocks_stalled: bool,
}

/// Computes mechanism settings from the calibrated timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct IrawController {
    timing: CycleTimeModel,
    ici: usize,
    ai: usize,
    stores_per_cycle: usize,
}

impl IrawController {
    /// Controller for the Silverthorne widths (`ICI = 2`, `AI = 2`,
    /// one store commit per cycle).
    #[must_use]
    pub fn silverthorne(timing: CycleTimeModel) -> Self {
        Self {
            timing,
            ici: 2,
            ai: 2,
            stores_per_cycle: 1,
        }
    }

    /// Settings for the given supply voltage.
    #[must_use]
    pub fn settings_for(&self, vcc: Millivolts) -> IrawSettings {
        let n = self.timing.stabilization_cycles(vcc);
        IrawSettings {
            n,
            scoreboard_bubble: n,
            iq_threshold: self.ici + self.ai * n as usize,
            stable_entries: self.stores_per_cycle * n as usize,
            fill_stall_cycles: n,
            prediction_blocks_stalled: false,
        }
    }

    /// The largest `N` across a Vcc sweep — sizes the physical Store
    /// Table and the scoreboard extension bits.
    #[must_use]
    pub fn max_n_over(&self, sweep: lowvcc_sram::VccRange) -> u32 {
        sweep
            .iter()
            .map(|v| self.timing.stabilization_cycles(v))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::PAPER_SWEEP;

    fn controller() -> IrawController {
        IrawController::silverthorne(CycleTimeModel::silverthorne_45nm())
    }

    #[test]
    fn paper_rule_600mv_boundary() {
        let c = controller();
        // §4.1.3: "600 mV or higher → deactivated; 575 mV or lower → one
        // stabilization cycle".
        let off = c.settings_for(mv(600));
        assert_eq!(off.n, 0);
        assert_eq!(off.iq_threshold, 2, "gate collapses to ICI");
        assert_eq!(off.stable_entries, 0);
        assert_eq!(off.fill_stall_cycles, 0);

        let on = c.settings_for(mv(575));
        assert_eq!(on.n, 1);
        assert_eq!(on.iq_threshold, 4, "ICI + AI·N = 2 + 2·1");
        assert_eq!(on.stable_entries, 1);
        assert_eq!(on.fill_stall_cycles, 1);
    }

    #[test]
    fn prediction_blocks_never_stall() {
        let c = controller();
        for v in PAPER_SWEEP.iter() {
            assert!(!c.settings_for(v).prediction_blocks_stalled);
        }
    }

    #[test]
    fn max_n_sizes_the_hardware() {
        let c = controller();
        // In the calibrated 45 nm range one cycle always suffices.
        assert_eq!(c.max_n_over(PAPER_SWEEP), 1);
    }

    #[test]
    fn settings_monotone_in_n() {
        let c = controller();
        for v in PAPER_SWEEP.iter() {
            let s = c.settings_for(v);
            assert_eq!(s.scoreboard_bubble, s.n);
            assert_eq!(s.iq_threshold, 2 + 2 * s.n as usize);
            assert_eq!(s.stable_entries, s.n as usize);
        }
    }
}
