//! Multi-trace aggregation and mechanism comparison (the machinery behind
//! Figure 11b's "performance gains" series).
//!
//! Suites are embarrassingly parallel — every (config, trace) pair is an
//! independent, deterministic simulation — so [`run_suite_with`] fans the
//! work items out over a [`Parallelism`]-sized pool of scoped threads.
//! Results are reassembled in suite order, making the output byte-
//! identical for any thread count (including errors: the reported error
//! is the first in suite order, not the first in wall-clock order).

use std::borrow::Borrow;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

use lowvcc_sram::{CycleTimeModel, Millivolts};
use lowvcc_trace::{Trace, TraceArena};

use crate::batch::{run_batch, EngineWorkspace};
use crate::config::{CoreConfig, SimConfig};
use crate::error::SimError;
use crate::sim::Simulator;
use crate::stats::SimResult;

/// Worker-thread count for suite execution.
///
/// `Parallelism::sequential()` (the default) runs in the calling thread;
/// [`Parallelism::available`] sizes the pool to the machine. The output
/// of every suite API is identical for any value — parallelism here is
/// purely a wall-clock knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism(NonZeroUsize);

impl Parallelism {
    /// Run in the calling thread, no workers.
    #[must_use]
    pub const fn sequential() -> Self {
        Self(NonZeroUsize::MIN)
    }

    /// Use exactly `threads` workers (clamped up to 1).
    #[must_use]
    pub fn threads(threads: usize) -> Self {
        Self(NonZeroUsize::new(threads.max(1)).expect("max(1) is non-zero"))
    }

    /// One worker per available hardware thread (1 when the machine
    /// cannot report its parallelism).
    #[must_use]
    pub fn available() -> Self {
        Self(std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN))
    }

    /// The worker count.
    #[must_use]
    pub fn count(self) -> usize {
        self.0.get()
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::sequential()
    }
}

/// Results of one configuration over a trace suite.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResult {
    /// Per-trace results, in suite order.
    pub per_trace: Vec<(String, SimResult)>,
}

impl SuiteResult {
    /// Total simulated wall-clock time across the suite.
    #[must_use]
    pub fn total_seconds(&self) -> f64 {
        self.per_trace.iter().map(|(_, r)| r.seconds()).sum()
    }

    /// Total committed instructions.
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.per_trace
            .iter()
            .map(|(_, r)| r.stats.instructions)
            .sum()
    }

    /// Suite-aggregate IPC (instructions over cycles).
    #[must_use]
    pub fn aggregate_ipc(&self) -> f64 {
        let cycles: u64 = self.per_trace.iter().map(|(_, r)| r.stats.cycles).sum();
        if cycles == 0 {
            0.0
        } else {
            self.total_instructions() as f64 / cycles as f64
        }
    }

    /// Fraction of instructions delayed by RF IRAW avoidance across the
    /// suite (the paper's 13.2% statistic).
    #[must_use]
    pub fn delayed_instruction_fraction(&self) -> f64 {
        let delayed: u64 = self
            .per_trace
            .iter()
            .map(|(_, r)| r.stats.iraw_delayed_instructions)
            .sum();
        let total = self.total_instructions();
        if total == 0 {
            0.0
        } else {
            delayed as f64 / total as f64
        }
    }
}

/// Speedup of one suite run over another.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Speedup {
    /// Ratio of total suite times (weighted by trace length).
    pub total_time: f64,
    /// Geometric mean of per-trace speedups.
    pub geomean: f64,
}

/// Runs `cfg` over every trace in the calling thread.
///
/// # Errors
///
/// Propagates the first simulation error.
pub fn run_suite(cfg: &SimConfig, traces: &[Trace]) -> Result<SuiteResult, SimError> {
    run_suite_with(cfg, traces, Parallelism::sequential())
}

/// Runs `cfg` over every trace, fanning out across `par` scoped worker
/// threads. Deterministic: the result (including which error is
/// reported) is identical for any `par`.
///
/// Generic over [`Borrow<Trace>`] so callers can pass owned traces
/// (`&[Trace]`) or a borrowed subset (`&[&Trace]`) — the result cache
/// uses the latter to simulate only the suite's cache misses without
/// cloning multi-megabyte traces.
///
/// # Errors
///
/// Propagates the suite-order-first simulation error.
pub fn run_suite_with<T: Borrow<Trace> + Sync>(
    cfg: &SimConfig,
    traces: &[T],
    par: Parallelism,
) -> Result<SuiteResult, SimError> {
    let sim = Simulator::new(cfg.clone())?;
    let workers = par.count().min(traces.len());
    if workers <= 1 {
        let mut per_trace = Vec::with_capacity(traces.len());
        for t in traces {
            let t = t.borrow();
            let r = sim.run(t)?;
            per_trace.push((t.name.clone(), r));
        }
        return Ok(SuiteResult { per_trace });
    }
    // Work-stealing over the trace list: each worker claims the next
    // unclaimed index and tags its results with it, so the merged output
    // is reassembled in suite order regardless of completion order.
    // `first_err` lets workers stop claiming traces *after* a known
    // failure — indices below it always complete, so the suite-order
    // error choice stays deterministic while the tail is cancelled.
    let next = AtomicUsize::new(0);
    let first_err = AtomicUsize::new(usize::MAX);
    let mut tagged: Vec<(usize, Result<SimResult, SimError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    // Sized once up front: work stealing puts no bound
                    // below the full suite on one worker's claims, so
                    // anything smaller can re-grow mid-sweep.
                    let mut out = Vec::with_capacity(traces.len());
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(t) = traces.get(i) else {
                            break;
                        };
                        if i > first_err.load(Ordering::Relaxed) {
                            // Claims are monotone per worker: everything
                            // this worker would claim next is even later.
                            break;
                        }
                        let r = sim.run(t.borrow());
                        if r.is_err() {
                            first_err.fetch_min(i, Ordering::Relaxed);
                        }
                        out.push((i, r));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("suite worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    let mut per_trace = Vec::with_capacity(traces.len());
    for (i, r) in tagged {
        per_trace.push((traces[i].borrow().name.clone(), r?));
    }
    Ok(SuiteResult { per_trace })
}

/// Runs each group's configurations over its trace, decoding every trace
/// once and reusing one [`EngineWorkspace`] per worker — the batched
/// counterpart of [`run_suite_with`], parallelised over *groups* (one
/// per trace) instead of (config, trace) pairs so a decoded arena stays
/// hot in cache across all of its sweep points.
///
/// `groups` pairs an index into `traces` with the configurations to run
/// on it. Results come back in group order, each `Vec` in config order.
/// Deterministic for any `par`, including which error is reported: the
/// lowest group index, then the lowest config index within it.
///
/// # Errors
///
/// Propagates the first (group-order, then config-order) error.
pub fn run_batch_groups<T: Borrow<Trace> + Sync>(
    groups: &[(usize, Vec<SimConfig>)],
    traces: &[T],
    par: Parallelism,
) -> Result<Vec<Vec<SimResult>>, SimError> {
    let workers = par.count().min(groups.len());
    if workers <= 1 {
        let mut ws = EngineWorkspace::new();
        let mut out = Vec::with_capacity(groups.len());
        for (ti, cfgs) in groups {
            let arena = TraceArena::from_trace(traces[*ti].borrow());
            out.push(run_batch(cfgs, &arena, &mut ws)?);
        }
        return Ok(out);
    }
    // The same work-stealing discipline as `run_suite_with`, one claim
    // per group: workers stop claiming past a known failure, so the
    // group-order error choice stays deterministic while the tail is
    // cancelled.
    let next = AtomicUsize::new(0);
    let first_err = AtomicUsize::new(usize::MAX);
    let mut tagged: Vec<(usize, Result<Vec<SimResult>, SimError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = EngineWorkspace::new();
                    let mut out = Vec::with_capacity(groups.len());
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((ti, cfgs)) = groups.get(i) else {
                            break;
                        };
                        if i > first_err.load(Ordering::Relaxed) {
                            break;
                        }
                        let arena = TraceArena::from_trace(traces[*ti].borrow());
                        let r = run_batch(cfgs, &arena, &mut ws);
                        if r.is_err() {
                            first_err.fetch_min(i, Ordering::Relaxed);
                        }
                        out.push((i, r));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    let mut out = Vec::with_capacity(groups.len());
    for (_, r) in tagged {
        out.push(r?);
    }
    Ok(out)
}

/// Runs every configuration over every trace, batched per trace: each
/// trace is decoded once and all of `cfgs` replay it back to back
/// before the next trace is touched. Returns one [`SuiteResult`] per
/// configuration, in `cfgs` order — byte-identical to calling
/// [`run_suite_with`] once per configuration, for any `par`.
///
/// # Errors
///
/// Propagates the first (trace-order, then config-order) error.
pub fn run_suite_batch<T: Borrow<Trace> + Sync>(
    cfgs: &[SimConfig],
    traces: &[T],
    par: Parallelism,
) -> Result<Vec<SuiteResult>, SimError> {
    let groups: Vec<(usize, Vec<SimConfig>)> =
        (0..traces.len()).map(|i| (i, cfgs.to_vec())).collect();
    let per_group = run_batch_groups(&groups, traces, par)?;
    let mut suites: Vec<SuiteResult> = cfgs
        .iter()
        .map(|_| SuiteResult {
            per_trace: Vec::with_capacity(traces.len()),
        })
        .collect();
    for (ti, results) in per_group.into_iter().enumerate() {
        let name = &traces[ti].borrow().name;
        for (ci, r) in results.into_iter().enumerate() {
            suites[ci].per_trace.push((name.clone(), r));
        }
    }
    Ok(suites)
}

/// Computes the speedup of `new` over `baseline` (paired by suite order).
///
/// # Panics
///
/// Panics if the two suites ran different trace counts.
#[must_use]
pub fn speedup(new: &SuiteResult, baseline: &SuiteResult) -> Speedup {
    assert_eq!(
        new.per_trace.len(),
        baseline.per_trace.len(),
        "suites must pair one-to-one"
    );
    let total_time = baseline.total_seconds() / new.total_seconds();
    let log_sum: f64 = new
        .per_trace
        .iter()
        .zip(&baseline.per_trace)
        .map(|((_, a), (_, b))| (b.seconds() / a.seconds()).ln())
        .sum();
    Speedup {
        total_time,
        geomean: (log_sum / new.per_trace.len() as f64).exp(),
    }
}

/// Baseline-vs-IRAW comparison at one supply voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismComparison {
    /// Supply voltage.
    pub vcc: Millivolts,
    /// Write-limited baseline results.
    pub baseline: SuiteResult,
    /// IRAW-avoidance results.
    pub iraw: SuiteResult,
    /// Clock-frequency gain of IRAW at this voltage.
    pub frequency_gain: f64,
    /// Measured performance speedup.
    pub speedup: Speedup,
}

/// Runs both mechanisms over the suite at `vcc` in the calling thread.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_mechanisms(
    core: CoreConfig,
    timing: &CycleTimeModel,
    vcc: Millivolts,
    traces: &[Trace],
) -> Result<MechanismComparison, SimError> {
    compare_mechanisms_with(core, timing, vcc, traces, Parallelism::sequential())
}

/// Runs both mechanisms over the suite at `vcc`, each suite fanned out
/// across `par` workers. Output is identical for any `par`.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn compare_mechanisms_with(
    core: CoreConfig,
    timing: &CycleTimeModel,
    vcc: Millivolts,
    traces: &[Trace],
    par: Parallelism,
) -> Result<MechanismComparison, SimError> {
    let (base_cfg, iraw_cfg) = SimConfig::mechanism_pair(core, timing, vcc);
    let mut suites = run_suite_batch(&[base_cfg, iraw_cfg], traces, par)?;
    let iraw = suites.pop().expect("two configs in, two suites out");
    let baseline = suites.pop().expect("two configs in, two suites out");
    let speedup = speedup(&iraw, &baseline);
    Ok(MechanismComparison {
        vcc,
        baseline,
        iraw,
        frequency_gain: timing.frequency_gain(vcc),
        speedup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanism;
    use lowvcc_sram::voltage::mv;
    use lowvcc_trace::{TraceSpec, WorkloadFamily};

    fn small_suite() -> Vec<Trace> {
        [
            (WorkloadFamily::SpecInt, 0u64),
            (WorkloadFamily::SpecFp, 1),
            (WorkloadFamily::Multimedia, 2),
        ]
        .iter()
        .map(|&(f, s)| TraceSpec::new(f, s, 20_000).build().unwrap())
        .collect()
    }

    #[test]
    fn suite_totals_add_up() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(550),
            Mechanism::Baseline,
        );
        let suite = run_suite(&cfg, &small_suite()).unwrap();
        assert_eq!(suite.per_trace.len(), 3);
        assert_eq!(suite.total_instructions(), 60_000);
        assert!(suite.total_seconds() > 0.0);
        assert!(suite.aggregate_ipc() > 0.0);
    }

    #[test]
    fn iraw_beats_baseline_at_low_vcc() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let cmp = compare_mechanisms(CoreConfig::silverthorne(), &timing, mv(500), &small_suite())
            .unwrap();
        // The paper's central claim, in miniature: substantial speedup,
        // below the raw frequency gain (stalls + constant-time memory).
        assert!(
            cmp.speedup.total_time > 1.2,
            "speedup {:.3} too small",
            cmp.speedup.total_time
        );
        assert!(
            cmp.speedup.total_time <= cmp.frequency_gain + 0.05,
            "speedup {:.3} cannot exceed frequency gain {:.3}",
            cmp.speedup.total_time,
            cmp.frequency_gain
        );
        assert!(cmp.iraw.delayed_instruction_fraction() > 0.0);
        assert_eq!(cmp.baseline.delayed_instruction_fraction(), 0.0);
    }

    #[test]
    fn geomean_close_to_total_time_for_equal_length_traces() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let cmp = compare_mechanisms(CoreConfig::silverthorne(), &timing, mv(475), &small_suite())
            .unwrap();
        let diff = (cmp.speedup.total_time - cmp.speedup.geomean).abs();
        assert!(
            diff < 0.3,
            "aggregates should roughly agree, diff {diff:.3}"
        );
    }

    #[test]
    fn parallel_suite_is_byte_identical_to_sequential() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(500),
            Mechanism::Iraw,
        );
        let traces = small_suite();
        let sequential = run_suite_with(&cfg, &traces, Parallelism::sequential()).unwrap();
        for workers in [2, 3, 8] {
            let parallel = run_suite_with(&cfg, &traces, Parallelism::threads(workers)).unwrap();
            assert_eq!(sequential, parallel, "{workers} workers");
        }
    }

    #[test]
    fn batched_suite_is_byte_identical_to_per_point() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let core = CoreConfig::silverthorne();
        let cfgs: Vec<SimConfig> = [475u32, 500, 550]
            .iter()
            .flat_map(|&vcc| {
                let (base, iraw) = SimConfig::mechanism_pair(core, &timing, mv(vcc));
                [base, iraw]
            })
            .collect();
        let traces = small_suite();
        let per_point: Vec<SuiteResult> = cfgs
            .iter()
            .map(|cfg| run_suite(cfg, &traces).unwrap())
            .collect();
        for workers in [1, 2, 5] {
            let batched = run_suite_batch(&cfgs, &traces, Parallelism::threads(workers)).unwrap();
            assert_eq!(per_point, batched, "{workers} workers");
        }
    }

    #[test]
    fn batch_groups_report_lowest_index_error() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let good = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(500),
            Mechanism::Baseline,
        );
        let mut bad = good.clone();
        bad.core.iq_entries = 33;
        let traces = small_suite();
        let groups = vec![
            (0usize, vec![good.clone()]),
            (1, vec![bad.clone(), good.clone()]),
            (2, vec![bad]),
        ];
        for workers in [1, 3] {
            let err = run_batch_groups(&groups, &traces, Parallelism::threads(workers))
                .expect_err("invalid config must surface");
            assert!(
                matches!(err, SimError::Config(_)),
                "unexpected error {err:?} at {workers} workers"
            );
        }
    }

    #[test]
    fn parallelism_counts() {
        assert_eq!(Parallelism::sequential().count(), 1);
        assert_eq!(Parallelism::threads(0).count(), 1, "clamped");
        assert_eq!(Parallelism::threads(6).count(), 6);
        assert!(Parallelism::available().count() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::sequential());
    }

    #[test]
    #[should_panic(expected = "one-to-one")]
    fn mismatched_suites_rejected() {
        let a = SuiteResult { per_trace: vec![] };
        let timing = CycleTimeModel::silverthorne_45nm();
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(500),
            Mechanism::Baseline,
        );
        let b = run_suite(&cfg, &small_suite()).unwrap();
        let _ = speedup(&a, &b);
    }
}
