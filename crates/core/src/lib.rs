//! Cycle-level in-order core simulator with IRAW (immediate read after
//! write) avoidance — the primary contribution of *"High-Performance
//! Low-Vcc In-Order Core"* (HPCA 2010), reproduced in Rust.
//!
//! The simulator replays synthetic traces (`lowvcc-trace`) through a
//! 2-wide in-order Silverthorne-like pipeline built from `lowvcc-uarch`
//! blocks, clocked by the calibrated `lowvcc-sram` timing model. Three
//! clocking disciplines are supported ([`Mechanism`]):
//!
//! * **Baseline** — conventional write-limited clock (slow at low Vcc,
//!   no stalls);
//! * **Iraw** — interrupted SRAM writes at the fast IRAW clock, with the
//!   paper's per-block avoidance mechanisms inserting the occasional
//!   stall: scoreboard bubbles for the RF (§4.1), the occupancy gate for
//!   the IQ (§4.2), post-fill port stalls for the infrequently written
//!   caches (§4.3), the Store Table for the DL0 (§4.4), and nothing at
//!   all for the BP/RSB (§4.5);
//! * **IdealLogic** — the unconstrained 24-FO4 reference.
//!
//! ```
//! use lowvcc_core::{compare_mechanisms, CoreConfig};
//! use lowvcc_sram::{CycleTimeModel, Millivolts};
//! use lowvcc_trace::{TraceSpec, WorkloadFamily};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let timing = CycleTimeModel::silverthorne_45nm();
//! let vcc = Millivolts::new(500)?;
//! let traces = vec![TraceSpec::new(WorkloadFamily::SpecInt, 0, 20_000).build()?];
//! let cmp = compare_mechanisms(CoreConfig::silverthorne(), &timing, vcc, &traces)?;
//! // The paper's headline: large speedup at 500 mV from the faster clock.
//! assert!(cmp.speedup.total_time > 1.2);
//! # Ok(())
//! # }
//! ```

pub mod adapt;
pub mod batch;
pub mod canon;
pub mod config;
pub mod error;
pub mod iraw;
pub mod perf;
pub mod pipeline;
pub mod sim;
pub mod stats;

pub use adapt::{adapt_at, AdaptGoal, AdaptOutcome};
pub use batch::{run_batch, EngineWorkspace};
pub use canon::{
    decode_sim_result, encode_sim_result, sim_key, CanonError, SimKey, ENGINE_SEMANTICS_VERSION,
};
pub use config::{CoreConfig, Mechanism, SimConfig};
pub use error::{ConfigError, SimError};
pub use iraw::{IrawController, IrawSettings};
pub use perf::{
    compare_mechanisms, compare_mechanisms_with, run_batch_groups, run_suite, run_suite_batch,
    run_suite_with, speedup, MechanismComparison, Parallelism, Speedup, SuiteResult,
};
pub use sim::Simulator;
pub use stats::{BranchStats, SimResult, SimStats, StallBreakdown};
