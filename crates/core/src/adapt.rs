//! Measured dynamic adaptation: at each Vcc, run both mechanisms and keep
//! the better one (paper abstract: "our mechanism can be adapted
//! dynamically to provide the highest performance and lowest EDP at each
//! Vcc level").
//!
//! The predictive controller in `lowvcc_energy::dvfs` picks operating
//! points from the analytical model; this module instead *measures* —
//! the gold standard the predictor is tested against.

use lowvcc_energy::{EnergyModel, IrawOverhead, Joules};
use lowvcc_sram::{CycleTimeModel, Millivolts};
use lowvcc_trace::Trace;

use crate::config::{CoreConfig, Mechanism};
use crate::error::SimError;
use crate::perf::{compare_mechanisms, SuiteResult};

/// Objective for the measured selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdaptGoal {
    /// Minimize execution time.
    Performance,
    /// Minimize energy-delay product.
    MinEdp,
}

/// Outcome of measured adaptation at one voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptOutcome {
    /// Supply voltage.
    pub vcc: Millivolts,
    /// The winning mechanism.
    pub chosen: Mechanism,
    /// Execution time of the winner (seconds).
    pub seconds: f64,
    /// Total energy of the winner.
    pub energy: Joules,
    /// EDP of the winner (joule-seconds).
    pub edp: f64,
    /// IRAW-over-baseline speedup measured at this voltage.
    pub iraw_speedup: f64,
    /// IRAW-over-baseline EDP ratio measured at this voltage.
    pub iraw_edp_ratio: f64,
}

fn suite_energy(
    energy: &EnergyModel,
    vcc: Millivolts,
    suite: &SuiteResult,
    dynamic_overhead: f64,
) -> Joules {
    suite
        .per_trace
        .iter()
        .map(|(_, r)| {
            energy
                .breakdown(vcc, r.stats.instructions, r.seconds(), dynamic_overhead)
                .total()
        })
        .sum()
}

/// Runs both mechanisms at `vcc` and selects per `goal`.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn adapt_at(
    core: CoreConfig,
    timing: &CycleTimeModel,
    energy: &EnergyModel,
    vcc: Millivolts,
    traces: &[Trace],
    goal: AdaptGoal,
) -> Result<AdaptOutcome, SimError> {
    let cmp = compare_mechanisms(core, timing, vcc, traces)?;
    let iraw_overhead = IrawOverhead::silverthorne().dynamic_energy_factor();

    let t_base = cmp.baseline.total_seconds();
    let t_iraw = cmp.iraw.total_seconds();
    let e_base = suite_energy(energy, vcc, &cmp.baseline, 1.0);
    let e_iraw = suite_energy(energy, vcc, &cmp.iraw, iraw_overhead);
    let edp_base = e_base.joules() * t_base;
    let edp_iraw = e_iraw.joules() * t_iraw;

    let iraw_wins = match goal {
        AdaptGoal::Performance => t_iraw < t_base,
        AdaptGoal::MinEdp => edp_iraw < edp_base,
    };
    let (chosen, seconds, energy_j, edp) = if iraw_wins {
        (Mechanism::Iraw, t_iraw, e_iraw, edp_iraw)
    } else {
        (Mechanism::Baseline, t_base, e_base, edp_base)
    };
    Ok(AdaptOutcome {
        vcc,
        chosen,
        seconds,
        energy: energy_j,
        edp,
        iraw_speedup: t_base / t_iraw,
        iraw_edp_ratio: edp_iraw / edp_base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;
    use lowvcc_trace::{TraceSpec, WorkloadFamily};

    fn traces() -> Vec<Trace> {
        vec![
            TraceSpec::new(WorkloadFamily::SpecInt, 0, 3_000)
                .build()
                .unwrap(),
            TraceSpec::new(WorkloadFamily::Kernel, 1, 3_000)
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn chooses_iraw_at_low_vcc_and_baseline_at_high() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let energy = EnergyModel::silverthorne_45nm();
        let core = CoreConfig::silverthorne();
        let ts = traces();
        for goal in [AdaptGoal::Performance, AdaptGoal::MinEdp] {
            let low = adapt_at(core, &timing, &energy, mv(475), &ts, goal).unwrap();
            assert_eq!(low.chosen, Mechanism::Iraw, "{goal:?} at 475 mV");
            assert!(low.iraw_speedup > 1.0);
            assert!(low.iraw_edp_ratio < 1.0);

            let high = adapt_at(core, &timing, &energy, mv(650), &ts, goal).unwrap();
            // At 650 mV the IRAW config degenerates to the same clock with
            // no stalls (N = 0): both mechanisms tie, so either choice is
            // acceptable — but nothing may be *worse*.
            assert!((high.iraw_speedup - 1.0).abs() < 0.01);
        }
    }

    #[test]
    fn outcome_carries_consistent_metrics() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let energy = EnergyModel::silverthorne_45nm();
        let out = adapt_at(
            CoreConfig::silverthorne(),
            &timing,
            &energy,
            mv(500),
            &traces(),
            AdaptGoal::MinEdp,
        )
        .unwrap();
        assert!((out.edp - out.energy.joules() * out.seconds).abs() / out.edp < 1e-9);
    }
}
