//! Decode-once/simulate-many batch execution.
//!
//! A voltage sweep replays the *same* trace under many configurations
//! (13 voltage points × up to 3 mechanisms). The per-point path decodes
//! the trace and rebuilds the whole engine for every run; the batch path
//! decodes once into a [`TraceArena`](lowvcc_trace::TraceArena) and
//! reuses one [`EngineWorkspace`] across all points, so the steady state
//! of a warmed-up sweep allocates nothing (verified by the
//! counting-allocator test in `tests/zero_alloc.rs`).
//!
//! Batched execution is byte-identical to the per-point path: every
//! [`Engine::reset`] restores the exact freshly-constructed state, and
//! the equivalence suites assert it across traces, mechanisms and worker
//! counts.

use lowvcc_trace::TraceArena;

use crate::config::SimConfig;
use crate::error::SimError;
use crate::pipeline::Engine;
use crate::stats::SimResult;

/// A reusable engine slot: scoreboards, timed buffers, pending heaps and
/// stall-guard state live across runs and are `reset()` between them
/// instead of reallocated.
///
/// ```
/// use lowvcc_core::{CoreConfig, EngineWorkspace, Mechanism, SimConfig};
/// use lowvcc_sram::{CycleTimeModel, Millivolts};
/// use lowvcc_trace::{TraceArena, TraceSpec, WorkloadFamily};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let timing = CycleTimeModel::silverthorne_45nm();
/// let trace = TraceSpec::new(WorkloadFamily::Kernel, 0, 2_000).build()?;
/// let arena = TraceArena::from_trace(&trace);
/// let mut ws = EngineWorkspace::new();
/// for vcc in [500u32, 525, 550] {
///     let cfg = SimConfig::at_vcc(
///         CoreConfig::silverthorne(),
///         &timing,
///         Millivolts::new(vcc)?,
///         Mechanism::Iraw,
///     );
///     let result = ws.run(&cfg, &arena)?;
///     assert_eq!(result.stats.instructions, 2_000);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineWorkspace {
    engine: Option<Engine>,
}

impl EngineWorkspace {
    /// Creates an empty workspace (the first run builds the engine).
    #[must_use]
    pub fn new() -> Self {
        Self { engine: None }
    }

    /// Runs `cfg` over an already-decoded trace, reusing the previous
    /// run's engine storage when the core geometry matches (the common
    /// sweep case — only Vcc/mechanism parameters change) and falling
    /// back to a fresh construction otherwise.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation and simulation errors.
    pub fn run(&mut self, cfg: &SimConfig, trace: &TraceArena) -> Result<SimResult, SimError> {
        match &mut self.engine {
            Some(engine) if engine.config().core == cfg.core => engine.reset(cfg.clone())?,
            slot => *slot = Some(Engine::new(cfg.clone())?),
        }
        self.engine
            .as_mut()
            .expect("engine installed above")
            .run(trace)
    }
}

/// Runs every configuration of a sweep over one decoded trace through a
/// shared workspace — the batch entry point that interleaves a sweep's
/// voltage points on a single trace for cache locality.
///
/// # Errors
///
/// Propagates the first (lowest-index) configuration or simulation
/// error.
pub fn run_batch(
    cfgs: &[SimConfig],
    trace: &TraceArena,
    ws: &mut EngineWorkspace,
) -> Result<Vec<SimResult>, SimError> {
    let mut out = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        out.push(ws.run(cfg, trace)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, Mechanism};
    use crate::sim::Simulator;
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::CycleTimeModel;
    use lowvcc_trace::{TraceSpec, WorkloadFamily};

    fn sweep_cfgs() -> Vec<SimConfig> {
        let timing = CycleTimeModel::silverthorne_45nm();
        let core = CoreConfig::silverthorne();
        [450u32, 500, 550]
            .iter()
            .flat_map(|&vcc| {
                let (base, iraw) = SimConfig::mechanism_pair(core, &timing, mv(vcc));
                [base, iraw]
            })
            .collect()
    }

    #[test]
    fn batch_matches_fresh_engines_exactly() {
        let trace = TraceSpec::new(WorkloadFamily::SpecInt, 3, 5_000)
            .build()
            .unwrap();
        let arena = TraceArena::from_trace(&trace);
        let cfgs = sweep_cfgs();
        let mut ws = EngineWorkspace::new();
        let batched = run_batch(&cfgs, &arena, &mut ws).unwrap();
        for (cfg, b) in cfgs.iter().zip(&batched) {
            let fresh = Simulator::new(cfg.clone()).unwrap().run(&trace).unwrap();
            assert_eq!(b, &fresh, "{:?} at {:?}", cfg.mechanism, cfg.vcc);
        }
    }

    #[test]
    fn workspace_reruns_same_config_identically() {
        let trace = TraceSpec::new(WorkloadFamily::Kernel, 1, 3_000)
            .build()
            .unwrap();
        let arena = TraceArena::from_trace(&trace);
        let timing = CycleTimeModel::silverthorne_45nm();
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(500),
            Mechanism::Iraw,
        );
        let mut ws = EngineWorkspace::new();
        let a = ws.run(&cfg, &arena).unwrap();
        let b = ws.run(&cfg, &arena).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn geometry_change_falls_back_to_fresh_engine() {
        let trace = TraceSpec::new(WorkloadFamily::Kernel, 2, 2_000)
            .build()
            .unwrap();
        let arena = TraceArena::from_trace(&trace);
        let timing = CycleTimeModel::silverthorne_45nm();
        let mut small = CoreConfig::silverthorne();
        small.iq_entries = 16;
        let a = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(500),
            Mechanism::Iraw,
        );
        let b = SimConfig::at_vcc(small, &timing, mv(500), Mechanism::Iraw);
        let mut ws = EngineWorkspace::new();
        let ra = ws.run(&a, &arena).unwrap();
        let rb = ws.run(&b, &arena).unwrap();
        let fresh_b = Simulator::new(b).unwrap().run(&trace).unwrap();
        assert_eq!(rb, fresh_b, "rebuilt engine must match fresh");
        let ra2 = ws.run(&a, &arena).unwrap();
        assert_eq!(ra, ra2, "switching back must also match");
    }

    #[test]
    fn invalid_config_is_reported() {
        let trace = TraceSpec::new(WorkloadFamily::Kernel, 0, 100)
            .build()
            .unwrap();
        let arena = TraceArena::from_trace(&trace);
        let timing = CycleTimeModel::silverthorne_45nm();
        let mut cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(500),
            Mechanism::Baseline,
        );
        cfg.core.iq_entries = 33;
        let mut ws = EngineWorkspace::new();
        assert!(ws.run(&cfg, &arena).is_err());
    }
}
