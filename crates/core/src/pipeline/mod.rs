//! The cycle-level in-order pipeline engine.
//!
//! Stage order within a cycle (oldest work first): long-latency
//! completions → issue (with the paper's IRAW gates) → Store Table
//! update → IQ allocation → fetch → scoreboard shift. Two scoreboards
//! run in lockstep: the *real* one carries the IRAW-extended patterns
//! (Figure 8), a *shadow* one carries the baseline patterns — an issue
//! slot blocked by the real board but clear in the shadow board is, by
//! construction, a cycle lost to IRAW avoidance, which is exactly how the
//! paper's §5.2 attribution (8.52% RF / 0.30% DL0 / 0.04% rest at
//! 575 mV) is measured here.

pub mod frontend;
pub mod memory;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lowvcc_trace::{Reg, TraceArena, UopKind};
use lowvcc_uarch::iq::InstQueue;
use lowvcc_uarch::ports::PortSet;
use lowvcc_uarch::scoreboard::{IrawWindow, Scoreboard};
use lowvcc_uarch::stable::{StableMatch, StoreTable, TrackedStore};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::pipeline::frontend::FrontEnd;
use crate::pipeline::memory::MemHierarchy;
use crate::stats::{SimResult, SimStats};

/// An instruction resident in the IQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct IqEntry {
    kind: UopKind,
    dst: Option<Reg>,
    src1: Option<Reg>,
    src2: Option<Reg>,
    addr: Option<u64>,
    size: u8,
    drain_noop: bool,
}

impl IqEntry {
    fn from_arena(trace: &TraceArena, i: usize) -> Self {
        Self {
            kind: trace.kind(i),
            dst: trace.dst(i),
            src1: trace.src1(i),
            src2: trace.src2(i),
            addr: trace.addr(i),
            size: trace.size(i),
            drain_noop: false,
        }
    }

    fn drain() -> Self {
        Self {
            kind: UopKind::Nop,
            dst: None,
            src1: None,
            src2: None,
            addr: None,
            size: 0,
            drain_noop: true,
        }
    }
}

/// Why the oldest instruction could not issue this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocker {
    /// A source is not ready on the real scoreboard, but *would* be on the
    /// baseline shadow board — pure IRAW delay.
    IrawWindow,
    /// A source is genuinely not ready (data dependence).
    DataDependence,
    /// Memory port / functional unit busy.
    Structural,
    /// DL0 post-fill stabilization guard.
    Dl0FillGuard,
    /// Store Table repair in progress.
    StableRepair,
    /// Register-file write port busy (Extra Bypass contention).
    WritePort,
}

/// The simulation engine for one configuration. The trace is not owned:
/// every run method borrows a decoded [`TraceArena`], so one arena can
/// feed many engines (and one engine, via [`Engine::reset`], many runs).
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: SimConfig,
    fe: FrontEnd,
    mem: MemHierarchy,
    iq: InstQueue<IqEntry>,
    sb: Scoreboard,
    shadow: Scoreboard,
    stable: StoreTable,
    pending: BinaryHeap<Reverse<(u64, Reg)>>,
    /// IRAW window of this run, fixed at construction (`None` when the
    /// mechanism is off) — hoisted out of the per-cycle hot path.
    window: Option<IrawWindow>,
    div_free_at: u64,
    fpdiv_free_at: u64,
    mem_port_free_at: u64,
    repair_until: u64,
    write_ports: PortSet,
    store_this_cycle: Option<TrackedStore>,
    iq_real_entries: usize,
    /// The current IQ head has been blocked by the IRAW window at least
    /// once (consumed into `iraw_delayed_instructions` when it issues).
    head_iraw_delayed: bool,
    /// Whether the last executed cycle's issue stage stopped on a blocked
    /// entry (gate open). Purely a fast-path gate: cycles that issue
    /// freely skip the skip analysis entirely.
    issue_blocked: bool,
    now: u64,
    stats: SimStats,
}

impl Engine {
    /// Builds the engine.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(cfg: SimConfig) -> Result<Self, SimError> {
        cfg.validate()?;
        let mem = MemHierarchy::new(&cfg)?;
        let fe = FrontEnd::new(&cfg);
        let mut stable = StoreTable::new(cfg.core.stable_max_entries);
        // Paper §4.4: enable as many entries as IRAW cycles require.
        stable.reconfigure(cfg.stabilization_cycles as usize);
        let window = (cfg.stabilization_cycles > 0).then_some(IrawWindow {
            bypass_levels: cfg.core.bypass_levels,
            bubble: cfg.stabilization_cycles,
        });
        Ok(Self {
            window,
            fe,
            mem,
            iq: InstQueue::new(cfg.core.iq_entries),
            sb: Scoreboard::new(cfg.core.scoreboard_width),
            shadow: Scoreboard::new(cfg.core.scoreboard_width),
            stable,
            pending: BinaryHeap::new(),
            div_free_at: 0,
            fpdiv_free_at: 0,
            mem_port_free_at: 0,
            repair_until: 0,
            write_ports: PortSet::new(2),
            store_this_cycle: None,
            iq_real_entries: 0,
            head_iraw_delayed: false,
            issue_blocked: false,
            now: 0,
            stats: SimStats::default(),
            cfg,
        })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Restores the freshly-constructed state in place for `cfg` — the
    /// exact state [`Engine::new`] would build — reusing every buffer
    /// the engine owns. The steady state of a warmed-up sweep therefore
    /// allocates nothing.
    ///
    /// The core geometry (`cfg.core`) must match the one this engine was
    /// built with: only sweep parameters (Vcc, mechanism, stabilization
    /// cycles, fault map) may change between runs. Callers reusing an
    /// engine across configurations check that precondition and fall back
    /// to a fresh construction (see `EngineWorkspace`).
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn reset(&mut self, cfg: SimConfig) -> Result<(), SimError> {
        cfg.validate()?;
        debug_assert_eq!(
            cfg.core, self.cfg.core,
            "Engine::reset requires an unchanged core geometry"
        );
        self.mem.reset(&cfg);
        self.fe.reset(&cfg);
        self.iq.reset();
        self.sb.reset();
        self.shadow.reset();
        self.stable.reset();
        self.stable.reconfigure(cfg.stabilization_cycles as usize);
        self.pending.clear();
        self.window = (cfg.stabilization_cycles > 0).then_some(IrawWindow {
            bypass_levels: cfg.core.bypass_levels,
            bubble: cfg.stabilization_cycles,
        });
        self.div_free_at = 0;
        self.fpdiv_free_at = 0;
        self.mem_port_free_at = 0;
        self.repair_until = 0;
        self.write_ports.reset();
        self.store_this_cycle = None;
        self.iq_real_entries = 0;
        self.head_iraw_delayed = false;
        self.issue_blocked = false;
        self.now = 0;
        self.stats = SimStats::default();
        self.cfg = cfg;
        Ok(())
    }

    /// Runs the simulation to completion on the event-driven fast path:
    /// cycles in which issue, allocation and fetch are all provably idle
    /// are skipped in O(1) (see [`Engine::try_skip`]). With
    /// `debug_assertions` the skipped stretches are cross-checked against
    /// the naive stepper cycle by cycle.
    ///
    /// # Errors
    ///
    /// Returns an error on invalid configuration or if the pipeline stops
    /// making progress (a simulator bug, surfaced rather than hung).
    pub fn run(&mut self, trace: &TraceArena) -> Result<SimResult, SimError> {
        self.run_inner(trace, true)
    }

    /// Runs the simulation stepping every cycle — the reference stepper
    /// the fast path must match bit for bit. Kept public for the
    /// equivalence suite and for bisecting fast-path bugs.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run`].
    pub fn run_naive(&mut self, trace: &TraceArena) -> Result<SimResult, SimError> {
        self.run_inner(trace, false)
    }

    fn run_inner(&mut self, trace: &TraceArena, fast: bool) -> Result<SimResult, SimError> {
        let budget = 1_000 * trace.len() as u64 + 100_000;
        while !self.finished(trace) {
            if self.now > budget {
                return Err(SimError::NoProgress {
                    cycles: self.now,
                    committed: self.stats.instructions,
                    total: trace.len() as u64,
                });
            }
            self.step(trace);
            if fast {
                self.try_skip(trace, budget);
            }
        }
        self.stats.cycles = self.now;
        self.stats.branches = self.fe.stats();
        self.stats.il0 = self.mem.il0_stats();
        self.stats.dl0 = self.mem.dl0_stats();
        self.stats.ul1 = self.mem.ul1_stats();
        self.stats.itlb = self.mem.itlb_stats();
        self.stats.dtlb = self.mem.dtlb_stats();
        self.stats.stable = self.stable.stats();
        self.stats.stalls.other_fill = self.mem.other_fill_stall_cycles();
        self.stats.memory_accesses = self.mem.memory_accesses();
        debug_assert_eq!(self.stats.instructions, trace.len() as u64);
        Ok(SimResult {
            stats: self.stats.clone(),
            cycle_time: self.cfg.cycle_time,
        })
    }

    fn finished(&self, trace: &TraceArena) -> bool {
        self.fe.trace_exhausted(trace)
            && self.fe.queue_empty()
            && self.iq.is_empty()
            && self.pending.is_empty()
    }

    /// One cycle.
    fn step(&mut self, trace: &TraceArena) {
        let now = self.now;
        // 1. Long-latency completions (load misses, divides).
        while let Some(&Reverse((t, reg))) = self.pending.peek() {
            if t > now {
                break;
            }
            self.pending.pop();
            self.sb.complete(reg, self.window);
            self.shadow.complete(reg, None);
        }
        // 2. Memory buffers.
        self.mem.tick(now);
        // 3. Issue.
        self.issue_stage(now);
        // 4. Store Table per-cycle update (after this cycle's probes).
        if self.cfg.iraw_active() {
            let committed = self.store_this_cycle.take();
            self.stable.cycle_update(committed);
        } else {
            self.store_this_cycle = None;
        }
        // 5. Allocate into the IQ.
        let room = self.cfg.core.iq_entries - self.iq.occupancy();
        let width = self.cfg.core.alloc_width.min(room);
        for _ in 0..width {
            let Some(d) = self.fe.pop_decoded(now) else {
                break;
            };
            let entry = IqEntry::from_arena(trace, d.trace_idx);
            self.iq.alloc(entry).expect("room reserved above");
            self.iq_real_entries += 1;
        }
        // 6. Fetch.
        self.fe.fetch_cycle(trace, &mut self.mem, now);
        // 7. End-of-trace drain: real instructions stuck under the gate
        //    get NOOP padding (paper §4.2); once only padding remains,
        //    the queue is architecturally empty and can be dropped.
        if self.fe.trace_exhausted(trace) && self.fe.queue_empty() && !self.iq.is_empty() {
            if self.iq_real_entries == 0 {
                self.iq.flush();
                self.head_iraw_delayed = false;
            } else if !self.iq.issue_allowed(
                self.cfg.core.issue_width,
                self.cfg.core.alloc_width,
                self.cfg.stabilization_cycles,
            ) {
                let pad = self.cfg.core.alloc_width * self.cfg.stabilization_cycles as usize;
                let before = self.iq.occupancy();
                self.iq.inject_drain(pad, IqEntry::drain);
                self.stats.drain_noops += (self.iq.occupancy() - before) as u64;
            }
        }
        // 8. Shift the ready registers.
        self.sb.tick();
        self.shadow.tick();
        self.now += 1;
    }

    /// The event-driven fast path. Runs after [`Engine::step`] advanced to
    /// cycle `self.now` and decides whether the next `k ≥ 1` cycles are
    /// provably identical blocked-issue cycles — no completion lands, no
    /// uop can issue, allocate or fetch — and if so applies their combined
    /// effect in O(1) and jumps `now` forward.
    ///
    /// The invariant is that every input of the per-cycle decision stays
    /// constant over the skipped stretch, so each skipped cycle would have
    /// attributed the same stall to the same blocker and changed nothing
    /// else. The wake-up cycle is therefore the minimum over every event
    /// that can change one of those inputs: the next long-latency
    /// completion, the next decoded uop becoming allocatable, fetch
    /// resuming after a redirect/miss, any readiness toggle of the head's
    /// sources on either scoreboard (IRAW bubbles open *and* close), and
    /// the structural frees the head's kind consults. With
    /// `debug_assertions` enabled, every skip is replayed on a cloned
    /// engine with the naive stepper and the states are asserted equal.
    fn try_skip(&mut self, trace: &TraceArena, budget: u64) {
        let now = self.now;
        // Two skippable shapes: a blocked IQ head behind an open gate, or
        // an empty IQ waiting on the front end (redirect / IL0 miss).
        // A closed gate over a non-empty IQ is not skippable: its stall
        // attribution depends on the head's would-be blocker each cycle.
        let head = match self.iq.front().copied() {
            Some(head) => {
                // Cheap gate: only cycles whose issue stage just stopped
                // on a blocked entry are worth analysing.
                if !self.issue_blocked {
                    return;
                }
                if !self.iq.issue_allowed(
                    self.cfg.core.issue_width,
                    self.cfg.core.alloc_width,
                    self.cfg.stabilization_cycles,
                ) {
                    return;
                }
                Some(head)
            }
            None => {
                if self.finished(trace) {
                    return;
                }
                None
            }
        };
        let blocker = match head {
            Some(ref h) => match self.blocker_for(h, now) {
                Some(b) => Some(b),
                None => return,
            },
            None => None,
        };
        // `budget + 1` rather than infinity: a head blocked forever (a
        // simulator bug) jumps straight past the budget and the run loop
        // reports NoProgress, exactly like the naive stepper would.
        let mut wake = budget.saturating_add(1);
        let bound = |wake: &mut u64, t: u64| {
            if t > now {
                *wake = (*wake).min(t);
            }
        };
        // Long-latency completions land at the head of `pending`.
        if let Some(&Reverse((t, _))) = self.pending.peek() {
            if t <= now {
                return;
            }
            bound(&mut wake, t);
        }
        // IQ allocation: active the moment a decoded uop is ready while
        // the IQ has room (issue being blocked or absent, room cannot
        // grow mid-skip).
        if self.iq.occupancy() < self.cfg.core.iq_entries {
            if let Some(t) = self.fe.next_decode_ready() {
                if t <= now {
                    return;
                }
                bound(&mut wake, t);
            }
        }
        // Fetch: quiescent only while redirect/miss-stalled, starved by an
        // exhausted trace, or blocked on a full decode queue (which cannot
        // drain before `wake` — allocation is bounded above).
        if !self.fe.trace_exhausted(trace) && !self.fe.queue_full() {
            let s = self.fe.stalled_until();
            if s <= now {
                return;
            }
            bound(&mut wake, s);
        }
        if let Some(ref head) = head {
            // Readiness toggles of the head's sources, on both boards:
            // they drive both the issue decision and the IRAW-vs-data-
            // dependence classification. All-zero (long-latency) registers
            // never toggle by shifting — their event is the pending
            // completion above.
            for src in head.src1.into_iter().chain(head.src2) {
                if let Some(k) = self.sb.cycles_until_change(src) {
                    bound(&mut wake, now + u64::from(k));
                }
                if let Some(k) = self.shadow.cycles_until_change(src) {
                    bound(&mut wake, now + u64::from(k));
                }
            }
            // Structural inputs consulted for this head's kind.
            match head.kind {
                UopKind::IntDiv => bound(&mut wake, self.div_free_at),
                UopKind::FpDiv => bound(&mut wake, self.fpdiv_free_at),
                k if k.is_mem() => {
                    bound(&mut wake, self.mem_port_free_at);
                    bound(&mut wake, self.repair_until);
                    if let Some(t) = self.mem.dl0_next_change(now) {
                        bound(&mut wake, t);
                    }
                }
                _ => {}
            }
            if self.cfg.extra_write_port_cycles > 0 && head.dst.is_some() {
                let latency = u64::from(self.cfg.core.latency_of(head.kind));
                bound(
                    &mut wake,
                    self.write_ports.earliest_free().saturating_sub(latency),
                );
            }
        }
        let k = wake.saturating_sub(now);
        if k == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        let reference = {
            let mut r = self.clone();
            for _ in 0..k {
                r.step(trace);
            }
            r
        };
        // Apply k cycles' worth of blocked-issue bookkeeping at once
        // (idle front-end bubbles attribute nothing).
        match blocker {
            Some(Blocker::IrawWindow) => {
                self.stats.stalls.rf_iraw += k;
                self.head_iraw_delayed = true;
            }
            Some(Blocker::Dl0FillGuard) => self.stats.stalls.dl0_fill += k,
            Some(Blocker::StableRepair) => self.stats.stalls.dl0_stable += k,
            Some(Blocker::WritePort) => self.stats.write_port_stalls += k,
            Some(Blocker::DataDependence | Blocker::Structural) | None => {}
        }
        if self.cfg.iraw_active() {
            // No store can commit in a blocked cycle, so the Store Table
            // sees k idle updates.
            self.stable.advance_idle(k);
        }
        // Batched equivalents of the per-cycle ticks: buffer frees are
        // monotone in time, lazy scoreboard shifts are O(1) deltas.
        self.mem.tick(now + k - 1);
        self.sb.advance(k);
        self.shadow.advance(k);
        self.now += k;
        #[cfg(debug_assertions)]
        self.assert_matches_reference(&reference);
    }

    /// Debug-only shadow check: after a skip, the engine must be in the
    /// exact state the naive stepper reaches for the same cycles.
    #[cfg(debug_assertions)]
    fn assert_matches_reference(&self, r: &Self) {
        assert_eq!(self.now, r.now, "fast path diverged: now");
        assert_eq!(self.stats, r.stats, "fast path diverged: stats");
        assert_eq!(self.iq, r.iq, "fast path diverged: IQ");
        assert_eq!(self.iq_real_entries, r.iq_real_entries);
        assert_eq!(self.head_iraw_delayed, r.head_iraw_delayed);
        assert_eq!(self.div_free_at, r.div_free_at);
        assert_eq!(self.fpdiv_free_at, r.fpdiv_free_at);
        assert_eq!(self.mem_port_free_at, r.mem_port_free_at);
        assert_eq!(self.repair_until, r.repair_until);
        assert_eq!(self.stable, r.stable, "fast path diverged: STable");
        assert_eq!(self.write_ports, r.write_ports);
        let sorted = |h: &BinaryHeap<Reverse<(u64, Reg)>>| {
            let mut v: Vec<_> = h.iter().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(&self.pending), sorted(&r.pending));
        for reg in Reg::all() {
            assert_eq!(
                self.sb.pattern(reg),
                r.sb.pattern(reg),
                "fast path diverged: scoreboard {reg:?}"
            );
            assert_eq!(
                self.shadow.pattern(reg),
                r.shadow.pattern(reg),
                "fast path diverged: shadow scoreboard {reg:?}"
            );
        }
        assert_eq!(self.mem.memory_accesses(), r.mem.memory_accesses());
        assert_eq!(
            self.mem.other_fill_stall_cycles(),
            r.mem.other_fill_stall_cycles()
        );
    }

    fn issue_stage(&mut self, now: u64) {
        self.issue_blocked = false;
        let gate_open = self.iq.issue_allowed(
            self.cfg.core.issue_width,
            self.cfg.core.alloc_width,
            self.cfg.stabilization_cycles,
        );
        if !gate_open {
            // Attribute the cycle to the IQ gate only if the head would
            // otherwise issue (occupancy exists but is below threshold).
            if let Some(head) = self.iq.front().copied() {
                if self.blocker_for(&head, now).is_none() {
                    self.stats.stalls.iq_iraw += 1;
                }
            }
            return;
        }
        let mut mem_issued_this_cycle = false;
        for slot in 0..self.cfg.core.issue_width {
            let Some(entry) = self.iq.front().copied() else {
                break;
            };
            // Enforce one memory op per cycle across the whole group.
            if entry.kind.is_mem() && mem_issued_this_cycle {
                break;
            }
            match self.blocker_for(&entry, now) {
                None => {
                    let mut entry = self.iq.pop_oldest().expect("front exists");
                    let delayed = self.head_iraw_delayed;
                    self.head_iraw_delayed = false;
                    mem_issued_this_cycle |= entry.kind.is_mem();
                    self.execute(&mut entry, now);
                    if !entry.drain_noop {
                        self.stats.instructions += 1;
                        self.iq_real_entries -= 1;
                        if delayed {
                            self.stats.iraw_delayed_instructions += 1;
                        }
                    }
                }
                Some(blocker) => {
                    // In-order issue stops at the first blocked entry, so
                    // at most one attribution happens per cycle — whether
                    // the bandwidth was lost at slot 0 (full stall) or a
                    // later slot (partial).
                    let _ = slot;
                    self.issue_blocked = true;
                    self.attribute_stall(blocker);
                    if blocker == Blocker::IrawWindow {
                        // Mark the head so the 13.2% statistic counts it
                        // once it finally issues (in-order issue: the
                        // blocked entry is the head until it goes).
                        self.head_iraw_delayed = true;
                    }
                    break;
                }
            }
        }
    }

    fn attribute_stall(&mut self, blocker: Blocker) {
        match blocker {
            Blocker::IrawWindow => self.stats.stalls.rf_iraw += 1,
            Blocker::Dl0FillGuard => self.stats.stalls.dl0_fill += 1,
            Blocker::StableRepair => self.stats.stalls.dl0_stable += 1,
            Blocker::WritePort => self.stats.write_port_stalls += 1,
            Blocker::DataDependence | Blocker::Structural => {}
        }
    }

    /// Decides whether `entry` can issue at `now`; returns the dominant
    /// blocker otherwise.
    fn blocker_for(&self, entry: &IqEntry, now: u64) -> Option<Blocker> {
        // Source readiness on the real board first; the shadow board is
        // only consulted to classify an actual block (hot-path saving:
        // ready sources never touch the shadow).
        let real_ready = entry
            .src1
            .into_iter()
            .chain(entry.src2)
            .all(|src| self.sb.is_ready(src));
        if !real_ready {
            let shadow_ready = entry
                .src1
                .into_iter()
                .chain(entry.src2)
                .all(|src| self.shadow.is_ready(src));
            return Some(if shadow_ready {
                Blocker::IrawWindow
            } else {
                Blocker::DataDependence
            });
        }
        // Structural hazards.
        match entry.kind {
            UopKind::IntDiv if now < self.div_free_at => return Some(Blocker::Structural),
            UopKind::FpDiv if now < self.fpdiv_free_at => return Some(Blocker::Structural),
            k if k.is_mem() => {
                if now < self.mem_port_free_at {
                    return Some(Blocker::Structural);
                }
                if now < self.repair_until {
                    return Some(Blocker::StableRepair);
                }
                if self.mem.dl0_blocked(now) {
                    return Some(Blocker::Dl0FillGuard);
                }
            }
            _ => {}
        }
        // Extra Bypass write-port contention.
        if self.cfg.extra_write_port_cycles > 0 && entry.dst.is_some() {
            let wb = now + u64::from(self.cfg.core.latency_of(entry.kind));
            if self.write_ports.free_count(wb) == 0 {
                return Some(Blocker::WritePort);
            }
        }
        None
    }

    fn execute(&mut self, entry: &mut IqEntry, now: u64) {
        let window = self.window;
        let latency = self.cfg.core.latency_of(entry.kind);
        // Extra Bypass: reserve the write port for the extended write.
        if self.cfg.extra_write_port_cycles > 0 && entry.dst.is_some() {
            let wb = now + u64::from(latency);
            let _ = self
                .write_ports
                .try_reserve(wb, 1 + u64::from(self.cfg.extra_write_port_cycles));
        }
        match entry.kind {
            UopKind::Load => self.execute_load(entry, now),
            UopKind::Store => self.execute_store(entry, now),
            UopKind::IntDiv => {
                self.div_free_at = now + u64::from(latency);
                self.mark_long(entry.dst, now + u64::from(latency));
            }
            UopKind::FpDiv => {
                self.fpdiv_free_at = now + u64::from(latency);
                self.mark_long(entry.dst, now + u64::from(latency));
            }
            _ => {
                if let Some(dst) = entry.dst {
                    self.sb.set_producer(dst, latency, window);
                    self.shadow.set_producer(dst, latency, None);
                }
            }
        }
    }

    fn mark_long(&mut self, dst: Option<Reg>, ready_at: u64) {
        if let Some(dst) = dst {
            self.sb.mark_long_latency(dst);
            self.shadow.mark_long_latency(dst);
            self.pending.push(Reverse((ready_at, dst)));
        }
    }

    fn execute_load(&mut self, entry: &mut IqEntry, now: u64) {
        let addr = entry.addr.expect("loads carry addresses");
        self.mem_port_free_at = now + 1;
        let outcome = self.mem.data_access(addr, false, now);
        let mut ready_at = outcome.ready_at;
        // Probe the Store Table in parallel with the DL0 (paper Fig. 10).
        if self.cfg.iraw_active() {
            let set = self.mem.dl0_set_of(addr);
            match self.stable.probe(addr, entry.size, set) {
                StableMatch::None => {}
                StableMatch::Full { replay_stores } => {
                    // STable forwards the data at hit latency; repair
                    // stalls subsequent memory ops while stores replay.
                    ready_at = ready_at.min(now + u64::from(self.cfg.core.lat_dl0_hit));
                    self.repair_until = now + 1 + u64::from(replay_stores);
                }
                StableMatch::SetOnly { replay_stores } => {
                    self.repair_until = now + 1 + u64::from(replay_stores);
                }
            }
        }
        let dst = entry.dst.expect("loads have destinations");
        let hit_lat = u64::from(self.cfg.core.lat_dl0_hit);
        if ready_at <= now + hit_lat {
            let lat = short_producer_latency(ready_at, now);
            let window = self.window;
            self.sb.set_producer(dst, lat, window);
            self.shadow.set_producer(dst, lat, None);
        } else {
            self.mark_long(Some(dst), ready_at);
        }
    }

    fn execute_store(&mut self, entry: &mut IqEntry, now: u64) {
        let addr = entry.addr.expect("stores carry addresses");
        self.mem_port_free_at = now + 1;
        let _ = self.mem.data_access(addr, true, now);
        if self.cfg.iraw_active() {
            self.store_this_cycle = Some(TrackedStore {
                addr,
                size: entry.size,
                set: self.mem.dl0_set_of(addr),
            });
        }
    }
}

/// Scoreboard latency of a short-latency load producer. A `ready_at` at
/// or before `now` (reachable only through stale Store-Table forwarding
/// state) must clamp to a 1-cycle producer — a raw `ready_at - now`
/// wraps in release builds and poisons the scoreboard for billions of
/// cycles (the `saturating_sub` idiom `try_skip` already uses).
fn short_producer_latency(ready_at: u64, now: u64) -> u32 {
    ready_at.saturating_sub(now).max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, Mechanism};
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::CycleTimeModel;
    use lowvcc_trace::{Trace, Uop};

    fn run_on(cfg: SimConfig, trace: &Trace) -> SimResult {
        Engine::new(cfg)
            .unwrap()
            .run(&TraceArena::from_trace(trace))
            .unwrap()
    }

    fn run_naive_on(cfg: SimConfig, trace: &Trace) -> SimResult {
        Engine::new(cfg)
            .unwrap()
            .run_naive(&TraceArena::from_trace(trace))
            .unwrap()
    }

    fn cfg(mechanism: Mechanism, vcc: u32) -> SimConfig {
        SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &CycleTimeModel::silverthorne_45nm(),
            mv(vcc),
            mechanism,
        )
    }

    fn reg(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    /// PCs cycle within one 64-byte line: a hot loop body, so the IL0
    /// warms after one miss and tests measure the pipeline, not cold
    /// compulsory misses.
    fn loop_pc(i: usize) -> u64 {
        0x40_0000 + (i as u64 % 16) * 4
    }

    fn alu_chain(n: usize) -> Trace {
        // r1 = r1 + r1 repeatedly: every uop depends on its predecessor.
        let uops = (0..n)
            .map(|i| Uop::alu(loop_pc(i), Some(reg(1)), Some(reg(1)), None))
            .collect();
        Trace::new("chain", uops)
    }

    fn independent_alus(n: usize) -> Trace {
        let uops = (0..n)
            .map(|i| {
                Uop::alu(
                    loop_pc(i),
                    Some(reg((16 + (i % 32)) as u8)),
                    Some(reg(0)),
                    None,
                )
            })
            .collect();
        Trace::new("independent", uops)
    }

    #[test]
    fn commits_every_instruction() {
        for mech in [Mechanism::Baseline, Mechanism::Iraw, Mechanism::IdealLogic] {
            let trace = independent_alus(500);
            let result = run_on(cfg(mech, 500), &trace);
            assert_eq!(result.stats.instructions, 500, "{mech:?}");
            assert!(result.stats.cycles > 250, "at most 2 IPC");
        }
    }

    #[test]
    fn independent_stream_reaches_high_ipc() {
        let trace = independent_alus(4000);
        let result = run_on(cfg(Mechanism::Baseline, 600), &trace);
        let ipc = result.stats.ipc();
        assert!(
            ipc > 1.5,
            "2-wide independent ALUs should near 2 IPC, got {ipc:.2}"
        );
    }

    #[test]
    fn dependent_chain_is_serial() {
        let trace = alu_chain(2000);
        let result = run_on(cfg(Mechanism::Baseline, 600), &trace);
        let ipc = result.stats.ipc();
        assert!(
            ipc < 1.1,
            "back-to-back chain can't dual-issue, got {ipc:.2}"
        );
    }

    #[test]
    fn iraw_inserts_rf_bubbles_on_two_cycle_consumers() {
        // Groups of six uops: producer, four independents, then a consumer
        // of the producer. At 2-wide issue the consumer lands exactly two
        // cycles after the producer — the stabilization hole (Figure 8's
        // cycle i+4): bypass has passed, the RF entry is still settling.
        let mut uops = Vec::new();
        for i in 0..500u64 {
            let d = reg((16 + (i % 16)) as u8);
            let base = 6 * i as usize;
            uops.push(Uop::alu(loop_pc(base), Some(d), Some(reg(0)), None));
            for k in 1..5 {
                uops.push(Uop::alu(
                    loop_pc(base + k),
                    Some(reg((40 + ((i as usize + k) % 16)) as u8)),
                    Some(reg(0)),
                    None,
                ));
            }
            uops.push(Uop::alu(loop_pc(base + 5), Some(reg(15)), Some(d), None));
        }
        let trace = Trace::new("gap", uops);
        let base = run_on(cfg(Mechanism::Baseline, 500), &trace);
        let iraw = run_on(cfg(Mechanism::Iraw, 500), &trace);
        assert_eq!(base.stats.stalls.rf_iraw, 0, "baseline has no IRAW stalls");
        assert_eq!(base.stats.iraw_delayed_instructions, 0);
        assert!(
            iraw.stats.stalls.rf_iraw > 0,
            "IRAW must delay window consumers"
        );
        assert!(iraw.stats.iraw_delayed_instructions > 0);
        // The IRAW run burns more cycles…
        assert!(iraw.stats.cycles > base.stats.cycles);
        // …but its faster clock still wins overall at 500 mV.
        assert!(iraw.speedup_over(&base) > 1.0);
    }

    #[test]
    fn back_to_back_consumers_use_the_bypass() {
        // Distance-1 consumers ride the bypass network: IRAW adds nothing.
        let trace = alu_chain(1000);
        let base = run_on(cfg(Mechanism::Baseline, 500), &trace);
        let iraw = run_on(cfg(Mechanism::Iraw, 500), &trace);
        // A pure chain issues one per cycle in both cases (bypass hit);
        // cycle counts stay close (fetch effects aside).
        let ratio = iraw.stats.cycles as f64 / base.stats.cycles as f64;
        assert!(
            ratio < 1.05,
            "bypassed chain should not suffer IRAW stalls (ratio {ratio:.3})"
        );
    }

    #[test]
    fn store_load_pair_triggers_stable_repair() {
        let mut uops = Vec::new();
        // Interleave store → immediately-following load of the same
        // address, repeatedly.
        for i in 0..200u64 {
            let addr = 0x10_0000 + (i % 4) * 8;
            uops.push(Uop::store(
                loop_pc(2 * i as usize),
                Some(reg(0)),
                None,
                addr,
                8,
            ));
            uops.push(Uop::load(
                loop_pc(2 * i as usize + 1),
                reg(17),
                None,
                addr,
                8,
            ));
        }
        let trace = Trace::new("stld", uops);
        let iraw = run_on(cfg(Mechanism::Iraw, 500), &trace);
        assert!(
            iraw.stats.stable.full_matches > 0,
            "same-address store→load must hit the STable"
        );
        let base = run_on(cfg(Mechanism::Baseline, 500), &trace);
        assert_eq!(base.stats.stable.probes, 0, "STable off in baseline");
    }

    #[test]
    fn drain_noops_flush_the_gate() {
        // A short trace whose tail would sit below the occupancy gate
        // forever without NOOP injection.
        let trace = independent_alus(3);
        let result = run_on(cfg(Mechanism::Iraw, 500), &trace);
        assert_eq!(result.stats.instructions, 3);
        assert!(result.stats.drain_noops > 0, "gate needs NOOP padding");
    }

    #[test]
    fn long_latency_divide_blocks_consumers_until_event() {
        let mut uops = vec![
            {
                let mut u = Uop::alu(loop_pc(0), Some(reg(20)), Some(reg(0)), None);
                u.kind = UopKind::IntDiv;
                u
            },
            Uop::alu(loop_pc(1), Some(reg(21)), Some(reg(20)), None),
        ];
        for i in 0..20u64 {
            uops.push(Uop::alu(
                loop_pc(2 + i as usize),
                Some(reg(22)),
                Some(reg(0)),
                None,
            ));
        }
        let trace = Trace::new("div", uops);
        let result = run_on(cfg(Mechanism::Baseline, 600), &trace);
        // Divide latency (16) dominates this short trace.
        assert!(result.stats.cycles > 16);
        assert_eq!(result.stats.instructions, 22);
    }

    #[test]
    fn fast_path_matches_naive_on_stall_heavy_traces() {
        // Mixed divides and dependence chains: long skippable stalls.
        let mut uops = Vec::new();
        for i in 0..300usize {
            let d = reg((16 + (i % 8)) as u8);
            let mut div = Uop::alu(loop_pc(3 * i), Some(d), Some(reg(0)), None);
            div.kind = UopKind::IntDiv;
            uops.push(div);
            uops.push(Uop::alu(loop_pc(3 * i + 1), Some(reg(40)), Some(d), None));
            uops.push(Uop::alu(
                loop_pc(3 * i + 2),
                Some(reg(41)),
                Some(reg(40)),
                None,
            ));
        }
        let trace = Trace::new("divchain", uops);
        for mech in [Mechanism::Baseline, Mechanism::Iraw, Mechanism::IdealLogic] {
            for vcc in [400, 500, 700] {
                let fast = run_on(cfg(mech, vcc), &trace);
                let naive = run_naive_on(cfg(mech, vcc), &trace);
                assert_eq!(fast.stats, naive.stats, "{mech:?} at {vcc} mV");
            }
        }
    }

    #[test]
    fn fast_path_matches_naive_with_memory_traffic() {
        let mut uops = Vec::new();
        // Strided loads (DL0 + UL1 misses) feeding consumers, with stores.
        for i in 0..400u64 {
            let addr = 0x10_0000 + i * 256;
            uops.push(Uop::load(loop_pc(3 * i as usize), reg(20), None, addr, 8));
            uops.push(Uop::alu(
                loop_pc(3 * i as usize + 1),
                Some(reg(21)),
                Some(reg(20)),
                None,
            ));
            uops.push(Uop::store(
                loop_pc(3 * i as usize + 2),
                Some(reg(21)),
                None,
                addr,
                8,
            ));
        }
        let trace = Trace::new("memstream", uops);
        for mech in [Mechanism::Baseline, Mechanism::Iraw] {
            let fast = run_on(cfg(mech, 500), &trace);
            let naive = run_naive_on(cfg(mech, 500), &trace);
            assert_eq!(fast.stats, naive.stats, "{mech:?}");
        }
    }

    #[test]
    fn ideal_logic_is_fastest_in_time() {
        let trace = independent_alus(2000);
        let results: Vec<_> = [Mechanism::IdealLogic, Mechanism::Iraw, Mechanism::Baseline]
            .iter()
            .map(|&m| run_on(cfg(m, 450), &trace))
            .collect();
        assert!(results[0].seconds() <= results[1].seconds());
        assert!(results[1].seconds() <= results[2].seconds());
    }

    /// Regression: `execute_load` computed `(ready_at - now).max(1)`,
    /// which wraps in release builds whenever a Store-Table forward
    /// leaves a stale `ready_at` behind `now`. The clamped helper must
    /// treat any past-or-present `ready_at` as a 1-cycle producer and
    /// still report real future latencies exactly.
    #[test]
    fn stale_ready_at_clamps_instead_of_wrapping() {
        // The stale path: ready_at strictly behind now.
        assert_eq!(short_producer_latency(0, 10), 1);
        assert_eq!(short_producer_latency(9, 10), 1);
        // Boundary: ready this very cycle still costs one cycle.
        assert_eq!(short_producer_latency(10, 10), 1);
        // Genuine future readiness is passed through unchanged.
        assert_eq!(short_producer_latency(13, 10), 3);
    }
}
