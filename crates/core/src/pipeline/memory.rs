//! The memory hierarchy: IL0/DL0/UL1, TLBs, fill and eviction buffers,
//! and the post-fill IRAW stall guards (paper §4.3).
//!
//! Timing discipline: cache/TLB *state* updates eagerly (standard
//! trace-driven practice), while *availability* is expressed as
//! ready-at cycles. Every fill arms the owning block's [`StallGuard`] at
//! the fill-completion cycle, so accesses landing in the next `N` cycles
//! are pushed out — those pushed cycles are the paper's "remaining
//! blocks" stall bucket (0.04% at 575 mV).

use lowvcc_trace::SimRng;
use lowvcc_uarch::buffers::{StallGuard, TimedBuffer};
use lowvcc_uarch::cache::SetAssocCache;
use lowvcc_uarch::tlb::Tlb;

use crate::config::SimConfig;
use crate::error::ConfigError;

/// Outcome of a data-side access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataOutcome {
    /// Cycle at which the data is available to consumers (loads) or the
    /// write is underway (stores).
    pub ready_at: u64,
    /// Whether the DL0 hit.
    pub dl0_hit: bool,
    /// Whether a page walk was needed.
    pub dtlb_walked: bool,
}

/// The full memory hierarchy of the core.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    il0: SetAssocCache,
    dl0: SetAssocCache,
    ul1: SetAssocCache,
    itlb: Tlb,
    dtlb: Tlb,
    fb: TimedBuffer,
    wcb: TimedBuffer,
    il0_guard: StallGuard,
    dl0_guard: StallGuard,
    ul1_guard: StallGuard,
    itlb_guard: StallGuard,
    dtlb_guard: StallGuard,
    wcb_guard: StallGuard,
    lat_ul1: u64,
    lat_dl0: u64,
    page_walk: u64,
    mem_latency: u64,
    prefetch_next_line: bool,
    memory_accesses: u64,
    other_fill_stall_cycles: u64,
}

impl MemHierarchy {
    /// Builds the hierarchy from a run configuration (applying any
    /// Faulty Bits disabled lines).
    ///
    /// # Errors
    ///
    /// Propagates cache-geometry validation failures.
    pub fn new(cfg: &SimConfig) -> Result<Self, ConfigError> {
        let cache = |which| move |source| ConfigError::Cache { which, source };
        let mut il0 = SetAssocCache::new(cfg.core.il0).map_err(cache("IL0"))?;
        let mut dl0 = SetAssocCache::new(cfg.core.dl0).map_err(cache("DL0"))?;
        let mut ul1 = SetAssocCache::new(cfg.core.ul1).map_err(cache("UL1"))?;
        let (dis_il0, dis_dl0, dis_ul1) = cfg.disabled_lines;
        if dis_il0 + dis_dl0 + dis_ul1 > 0 {
            let mut rng = SimRng::seed_from(cfg.fault_seed);
            il0.disable_random_lines(dis_il0, &mut rng);
            dl0.disable_random_lines(dis_dl0, &mut rng);
            ul1.disable_random_lines(dis_ul1, &mut rng);
        }
        let n = cfg.stabilization_cycles;
        Ok(Self {
            il0,
            dl0,
            ul1,
            itlb: Tlb::new(cfg.core.itlb_entries),
            dtlb: Tlb::new(cfg.core.dtlb_entries),
            fb: TimedBuffer::new(cfg.core.fb_entries),
            wcb: TimedBuffer::new(cfg.core.wcb_entries),
            il0_guard: StallGuard::new(n),
            dl0_guard: StallGuard::new(n),
            ul1_guard: StallGuard::new(n),
            itlb_guard: StallGuard::new(n),
            dtlb_guard: StallGuard::new(n),
            wcb_guard: StallGuard::new(n),
            lat_ul1: u64::from(cfg.core.lat_ul1),
            lat_dl0: u64::from(cfg.core.lat_dl0_hit),
            page_walk: u64::from(cfg.core.page_walk_cycles),
            mem_latency: cfg.memory_latency_cycles(),
            prefetch_next_line: cfg.core.il0_next_line_prefetch,
            memory_accesses: 0,
            other_fill_stall_cycles: 0,
        })
    }

    /// Restores the freshly-constructed state in place for `cfg` — the
    /// exact state [`MemHierarchy::new`] would build, including the
    /// re-applied fault map and every cfg-derived latency — without
    /// reallocating the cache, TLB or buffer storage. The caller must
    /// keep the cache geometry (`cfg.core`) unchanged; batch reuse falls
    /// back to a fresh construction otherwise.
    pub fn reset(&mut self, cfg: &SimConfig) {
        self.il0.reset();
        self.dl0.reset();
        self.ul1.reset();
        let (dis_il0, dis_dl0, dis_ul1) = cfg.disabled_lines;
        if dis_il0 + dis_dl0 + dis_ul1 > 0 {
            // Same draw order as `new`: il0 → dl0 → ul1 from one stream.
            let mut rng = SimRng::seed_from(cfg.fault_seed);
            self.il0.disable_random_lines(dis_il0, &mut rng);
            self.dl0.disable_random_lines(dis_dl0, &mut rng);
            self.ul1.disable_random_lines(dis_ul1, &mut rng);
        }
        self.itlb.reset();
        self.dtlb.reset();
        self.fb.reset();
        self.wcb.reset();
        let n = cfg.stabilization_cycles;
        self.il0_guard = StallGuard::new(n);
        self.dl0_guard = StallGuard::new(n);
        self.ul1_guard = StallGuard::new(n);
        self.itlb_guard = StallGuard::new(n);
        self.dtlb_guard = StallGuard::new(n);
        self.wcb_guard = StallGuard::new(n);
        self.lat_ul1 = u64::from(cfg.core.lat_ul1);
        self.lat_dl0 = u64::from(cfg.core.lat_dl0_hit);
        self.page_walk = u64::from(cfg.core.page_walk_cycles);
        self.mem_latency = cfg.memory_latency_cycles();
        self.prefetch_next_line = cfg.core.il0_next_line_prefetch;
        self.memory_accesses = 0;
        self.other_fill_stall_cycles = 0;
    }

    /// Reconfigures every guard's `N` (Vcc change).
    pub fn set_stabilization_cycles(&mut self, n: u32) {
        for g in [
            &mut self.il0_guard,
            &mut self.dl0_guard,
            &mut self.ul1_guard,
            &mut self.itlb_guard,
            &mut self.dtlb_guard,
            &mut self.wcb_guard,
        ] {
            g.set_n(n);
        }
    }

    /// DL0 set index of a byte address (for the Store Table).
    #[must_use]
    pub fn dl0_set_of(&self, addr: u64) -> u64 {
        self.dl0.set_index(addr >> 6)
    }

    /// Whether the DL0 port is blocked at `cycle` by a post-fill guard.
    #[must_use]
    pub fn dl0_blocked(&self, cycle: u64) -> bool {
        self.dl0_guard.is_stalled(cycle)
    }

    /// First cycle the DL0 port frees.
    #[must_use]
    pub fn dl0_free_at(&self) -> u64 {
        self.dl0_guard.free_at()
    }

    /// First cycle after `now` at which [`MemHierarchy::dl0_blocked`]
    /// changes value absent new fills (the guard window opening or
    /// closing); `None` when settled. Fast-path wake-up bound.
    #[must_use]
    pub fn dl0_next_change(&self, now: u64) -> Option<u64> {
        self.dl0_guard.next_change(now)
    }

    /// Frees completed fill-buffer and WCB entries.
    pub fn tick(&mut self, now: u64) {
        self.fb.expire(now);
        self.wcb.expire(now);
    }

    /// Delays `start` past a guard, charging the pushed cycles to the
    /// "other blocks" stall bucket.
    fn guarded_start(&mut self, guard: Guard, start: u64) -> u64 {
        let g = match guard {
            Guard::Il0 => &self.il0_guard,
            Guard::Ul1 => &self.ul1_guard,
            Guard::Itlb => &self.itlb_guard,
            Guard::Dtlb => &self.dtlb_guard,
            Guard::Wcb => &self.wcb_guard,
        };
        if g.is_stalled(start) {
            let free = g.free_at();
            self.other_fill_stall_cycles += free - start;
            free
        } else {
            start
        }
    }

    /// Requests `line` from the UL1 (and memory beyond), returning its
    /// arrival cycle at the requesting L0. Fills UL1 on miss and arms the
    /// UL1 guard.
    fn ul1_request(&mut self, line: u64, now: u64) -> u64 {
        let start = self.guarded_start(Guard::Ul1, now);
        if self.ul1.access(line) {
            return start + self.lat_ul1;
        }
        // Miss: off-chip access, then fill (evictions drain via WCB).
        self.memory_accesses += 1;
        let arrival = start + self.lat_ul1 + self.mem_latency;
        if let Ok(evicted) = self.ul1.fill(line) {
            self.ul1_guard.on_fill(arrival);
            if let Some(victim) = evicted {
                self.spill_to_wcb(victim, arrival);
            }
        }
        arrival
    }

    /// Sends an evicted line through the WCB/EB (arming its guard — the
    /// WCB is itself an IRAW-protected SRAM block, so back-to-back
    /// evictions are spaced out by `N` cycles).
    fn spill_to_wcb(&mut self, line: u64, now: u64) {
        let start = self.guarded_start(Guard::Wcb, now);
        let drain_at = start + self.lat_ul1;
        if self.wcb.allocate(line, drain_at).is_ok() {
            self.wcb_guard.on_fill(start);
        }
        // A full WCB drops the entry from the timing model: the write-back
        // itself has no consumer to delay in a trace-driven run.
    }

    /// Allocates a fill-buffer slot for `line`, merging secondary misses.
    /// Returns the cycle at which the FB can accept it (may be pushed by
    /// a full buffer) — FB full events are real pipeline stalls.
    fn fb_admit(&mut self, line: u64, now: u64) -> u64 {
        if self.fb.contains(line) {
            return now;
        }
        if !self.fb.is_full() {
            return now;
        }
        // Wait for the earliest in-flight fill to complete.
        let mut earliest = u64::MAX;
        for probe in 0..64u64 {
            let t = now + probe;
            if !self.fb.is_full() {
                return t;
            }
            self.fb.expire(t);
            earliest = t;
        }
        earliest
    }

    /// Instruction fetch of the line holding `pc`. Returns the cycle at
    /// which the fetch group is available.
    pub fn ifetch(&mut self, pc: u64, now: u64) -> u64 {
        let mut start = self.guarded_start(Guard::Itlb, now);
        if !self.itlb.access(pc) {
            start += self.page_walk;
            self.itlb.fill(pc);
            self.itlb_guard.on_fill(start);
        }
        start = self.guarded_start(Guard::Il0, start);
        let line = pc >> 6;
        let ready = if self.il0.access(line) {
            // Tag hit — but the line may still be in flight (prefetched or
            // a merged miss): the FB gates availability.
            match self.fb.ready_at(line) {
                Some(t) => t.max(start),
                None => start,
            }
        } else {
            let start = self.fb_admit(line, start);
            let arrival = self.ul1_request(line, start);
            let _ = self.fb.allocate(line, arrival);
            if self.il0.fill(line).is_ok() {
                self.il0_guard.on_fill(arrival);
            }
            arrival
        };
        // Next-line instruction prefetch (background; no stall).
        if self.prefetch_next_line {
            let next = line + 1;
            if !self.il0.probe(next) && !self.fb.contains(next) && !self.fb.is_full() {
                let arrival = self.ul1_request(next, ready);
                let _ = self.fb.allocate(next, arrival);
                if self.il0.fill(next).is_ok() {
                    self.il0_guard.on_fill(arrival);
                }
            }
        }
        ready
    }

    /// Data access (load or store) to `addr`.
    pub fn data_access(&mut self, addr: u64, is_store: bool, now: u64) -> DataOutcome {
        let mut start = self.guarded_start(Guard::Dtlb, now);
        let mut walked = false;
        if !self.dtlb.access(addr) {
            walked = true;
            start += self.page_walk;
            self.dtlb.fill(addr);
            self.dtlb_guard.on_fill(start);
        }
        let line = addr >> 6;
        if self.dl0.access(line) {
            // Tag hit; a line still in flight in the FB gates readiness.
            let base_ready = start + self.lat_dl0;
            let ready_at = match self.fb.ready_at(line) {
                Some(t) => base_ready.max(t + 1),
                None => base_ready,
            };
            return DataOutcome {
                ready_at,
                dl0_hit: true,
                dtlb_walked: walked,
            };
        }
        // Miss (write-allocate for stores too): fetch the line.
        let start = self.fb_admit(line, start);
        let pending = self.fb.ready_at(line);
        let arrival = match pending {
            Some(t) => t.max(start),
            None => self.ul1_request(line, start),
        };
        let _ = self.fb.allocate(line, arrival);
        if pending.is_none() {
            if let Ok(evicted) = self.dl0.fill(line) {
                self.dl0_guard.on_fill(arrival);
                if let Some(victim) = evicted {
                    self.spill_to_wcb(victim, arrival);
                }
            }
        }
        DataOutcome {
            ready_at: if is_store { arrival } else { arrival + 1 },
            dl0_hit: false,
            dtlb_walked: walked,
        }
    }

    /// Off-chip accesses performed.
    #[must_use]
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// Cycles by which non-DL0 guards pushed accesses out.
    #[must_use]
    pub fn other_fill_stall_cycles(&self) -> u64 {
        self.other_fill_stall_cycles
    }

    /// Cycles by which the DL0 guard is armed (exposed for issue-side
    /// stall attribution).
    #[must_use]
    pub fn dl0_guard_events(&self) -> u64 {
        self.dl0_guard.stall_events()
    }

    /// IL0 statistics.
    #[must_use]
    pub fn il0_stats(&self) -> lowvcc_uarch::cache::CacheStats {
        self.il0.stats()
    }

    /// DL0 statistics.
    #[must_use]
    pub fn dl0_stats(&self) -> lowvcc_uarch::cache::CacheStats {
        self.dl0.stats()
    }

    /// UL1 statistics.
    #[must_use]
    pub fn ul1_stats(&self) -> lowvcc_uarch::cache::CacheStats {
        self.ul1.stats()
    }

    /// ITLB statistics.
    #[must_use]
    pub fn itlb_stats(&self) -> lowvcc_uarch::tlb::TlbStats {
        self.itlb.stats()
    }

    /// DTLB statistics.
    #[must_use]
    pub fn dtlb_stats(&self) -> lowvcc_uarch::tlb::TlbStats {
        self.dtlb.stats()
    }
}

#[derive(Debug, Clone, Copy)]
enum Guard {
    Il0,
    Ul1,
    Itlb,
    Dtlb,
    Wcb,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, Mechanism, SimConfig};
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::CycleTimeModel;

    fn mem(mechanism: Mechanism, vcc: u32) -> MemHierarchy {
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &CycleTimeModel::silverthorne_45nm(),
            mv(vcc),
            mechanism,
        );
        MemHierarchy::new(&cfg).unwrap()
    }

    #[test]
    fn ifetch_hit_after_cold_miss() {
        let mut m = mem(Mechanism::Iraw, 500);
        let t0 = m.ifetch(0x40_0000, 0);
        assert!(t0 > 0, "cold miss takes time");
        // Re-fetching the same line later hits instantly (after the
        // post-fill guard expires).
        let later = t0 + 10;
        let t1 = m.ifetch(0x40_0004, later);
        assert_eq!(t1, later);
        assert_eq!(m.il0_stats().misses, 1);
        assert_eq!(m.il0_stats().hits, 1);
    }

    #[test]
    fn il0_post_fill_guard_delays_next_fetch() {
        let mut m = mem(Mechanism::Iraw, 500);
        let arrival = m.ifetch(0x40_0000, 0);
        // A different line in the same page (skipping the prefetched
        // next line), fetched exactly at the fill-completion cycle, is
        // pushed out by the guard (N = 1 at 500 mV).
        let t = m.ifetch(0x40_0080, arrival);
        assert!(t > arrival, "guard must delay the access");
        assert!(m.other_fill_stall_cycles() > 0);
    }

    #[test]
    fn no_guard_delays_when_iraw_off() {
        let mut m = mem(Mechanism::Baseline, 500);
        let arrival = m.ifetch(0x40_0000, 0);
        let before = m.other_fill_stall_cycles();
        // Immediately access another line: both accesses may proceed —
        // baseline writes complete within the (longer) cycle.
        let _ = m.ifetch(0x55_0000, arrival);
        assert_eq!(m.other_fill_stall_cycles(), before);
    }

    #[test]
    fn load_hit_takes_dl0_latency() {
        let mut m = mem(Mechanism::Iraw, 500);
        let miss = m.data_access(0x8000, false, 0);
        assert!(!miss.dl0_hit);
        let after = miss.ready_at + 10;
        let hit = m.data_access(0x8008, false, after);
        assert!(hit.dl0_hit);
        assert_eq!(hit.ready_at, after + 3);
    }

    #[test]
    fn dtlb_walk_charged_once_per_page() {
        let mut m = mem(Mechanism::Iraw, 500);
        let first = m.data_access(0x10_0000, false, 0);
        assert!(first.dtlb_walked);
        let again = m.data_access(0x10_0040, false, first.ready_at + 5);
        assert!(!again.dtlb_walked);
        assert_eq!(m.dtlb_stats().misses, 1);
    }

    #[test]
    fn memory_cycles_depend_on_clock() {
        // Same Vcc, different limiters: the faster IRAW clock sees more
        // cycles of constant-time DRAM latency.
        let mut fast = mem(Mechanism::Iraw, 500);
        let mut slow = mem(Mechanism::Baseline, 500);
        let tf = fast.data_access(0x9000, false, 0).ready_at;
        let ts = slow.data_access(0x9000, false, 0).ready_at;
        assert!(
            tf > ts,
            "IRAW clock: {tf} cycles vs baseline {ts} — constant-time memory"
        );
        assert_eq!(fast.memory_accesses(), 1);
    }

    #[test]
    fn secondary_miss_merges_in_fill_buffer() {
        let mut m = mem(Mechanism::Iraw, 500);
        let a = m.data_access(0xA000, false, 0);
        let b = m.data_access(0xA008, false, 1); // same line, in flight
        assert!(!a.dl0_hit);
        // The second access sees the (eagerly installed) tag, but its data
        // readiness is gated by the in-flight fill — merged, not
        // serialized, and crucially not an instant phantom hit.
        assert!(b.ready_at >= a.ready_at - 1, "no phantom early hit");
        assert!(b.ready_at <= a.ready_at + 4, "merged, not serialized");
        assert_eq!(m.memory_accesses(), 1, "one off-chip fetch");
    }

    #[test]
    fn faulty_bits_disable_lines() {
        let mut cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &CycleTimeModel::silverthorne_45nm(),
            mv(500),
            Mechanism::Baseline,
        );
        cfg.disabled_lines = (10, 10, 100);
        cfg.fault_seed = 7;
        let m = MemHierarchy::new(&cfg).unwrap();
        assert_eq!(m.il0_stats().accesses, 0);
        // Capacity shrank.
        assert!(m.dl0_stats().accesses == 0);
    }

    #[test]
    fn stores_allocate_on_miss() {
        let mut m = mem(Mechanism::Iraw, 500);
        let w = m.data_access(0xB000, true, 0);
        assert!(!w.dl0_hit);
        let r = m.data_access(0xB000, false, w.ready_at + 5);
        assert!(r.dl0_hit, "write-allocate brings the line in");
    }
}
