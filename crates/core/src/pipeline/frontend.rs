//! Front end: instruction fetch, branch prediction (BP + BTB + RSB), and
//! the decode pipe feeding the IQ.
//!
//! The BP and RSB are the paper's *prediction-only* blocks: at low Vcc
//! they run with no IRAW protection at all (§4.5) — a read may observe a
//! stabilizing counter. That can at worst flip a prediction, so the model
//! tracks the frequency of such windows ([`CorruptionTracker`]) instead
//! of stalling anything.

use std::collections::VecDeque;

use lowvcc_trace::{TraceArena, UopKind};
use lowvcc_uarch::bpred::{Bimodal, BranchPredictor, Btb, CorruptionTracker};
use lowvcc_uarch::rsb::ReturnStack;

use crate::config::SimConfig;
use crate::pipeline::memory::MemHierarchy;
use crate::stats::BranchStats;

/// Decoded uop waiting to enter the IQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedUop {
    /// Index into the trace.
    pub trace_idx: usize,
    /// Cycle at which decode completes (IQ-allocatable).
    pub ready_at: u64,
}

/// The fetch/decode front end.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    bp: Bimodal,
    btb: Btb,
    rsb: ReturnStack,
    tracker: CorruptionTracker,
    decode_queue: VecDeque<DecodedUop>,
    queue_cap: usize,
    cursor: usize,
    stalled_until: u64,
    last_line: Option<u64>,
    fetch_width: usize,
    front_end_stages: u64,
    mispredict_penalty: u64,
    stats: BranchStats,
}

impl FrontEnd {
    /// Builds the front end for a run.
    #[must_use]
    pub fn new(cfg: &SimConfig) -> Self {
        let n = cfg.stabilization_cycles;
        Self {
            bp: Bimodal::new(cfg.core.bp_entries),
            btb: Btb::new(cfg.core.btb_entries),
            rsb: ReturnStack::new(cfg.core.rsb_entries, n),
            tracker: CorruptionTracker::new(cfg.core.bp_entries, n),
            decode_queue: VecDeque::with_capacity(16),
            queue_cap: 16,
            cursor: 0,
            stalled_until: 0,
            last_line: None,
            fetch_width: cfg.core.fetch_width,
            front_end_stages: u64::from(cfg.core.front_end_stages),
            mispredict_penalty: u64::from(cfg.core.mispredict_penalty),
            stats: BranchStats::default(),
        }
    }

    /// Restores the freshly-constructed state in place for `cfg` — the
    /// exact state [`FrontEnd::new`] would build — reusing the predictor
    /// tables and the decode queue's storage. No allocation.
    pub fn reset(&mut self, cfg: &SimConfig) {
        let n = cfg.stabilization_cycles;
        self.bp.reset();
        self.btb.reset();
        self.rsb.reset(n);
        self.tracker.reset(n);
        self.decode_queue.clear();
        self.cursor = 0;
        self.stalled_until = 0;
        self.last_line = None;
        self.fetch_width = cfg.core.fetch_width;
        self.front_end_stages = u64::from(cfg.core.front_end_stages);
        self.mispredict_penalty = u64::from(cfg.core.mispredict_penalty);
        self.stats = BranchStats::default();
    }

    /// Whether every trace uop has been fetched.
    #[must_use]
    pub fn trace_exhausted(&self, trace: &TraceArena) -> bool {
        self.cursor >= trace.len()
    }

    /// Whether the decode queue is empty.
    #[must_use]
    pub fn queue_empty(&self) -> bool {
        self.decode_queue.is_empty()
    }

    /// Pops the oldest decode-complete uop for IQ allocation, if any.
    /// Called once per allocation slot — allocation-free on purpose (the
    /// old width-at-a-time API built a `Vec` every cycle).
    pub fn pop_decoded(&mut self, now: u64) -> Option<DecodedUop> {
        match self.decode_queue.front() {
            Some(d) if d.ready_at <= now => self.decode_queue.pop_front(),
            _ => None,
        }
    }

    /// Returns the allocated-but-not-popped count (for drain decisions).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.decode_queue.len()
    }

    /// Whether the decode queue is at capacity — fetch is a no-op until
    /// allocation drains it.
    #[must_use]
    pub fn queue_full(&self) -> bool {
        self.decode_queue.len() >= self.queue_cap
    }

    /// Cycle at which the oldest decoded uop becomes IQ-allocatable
    /// (`ready_at` values are monotone in queue order, so the front is the
    /// earliest). `None` on an empty queue.
    #[must_use]
    pub fn next_decode_ready(&self) -> Option<u64> {
        self.decode_queue.front().map(|d| d.ready_at)
    }

    /// Cycle until which fetch is stalled (miss in flight or mispredict
    /// redirect); fetch is active whenever `now >=` this.
    #[must_use]
    pub fn stalled_until(&self) -> u64 {
        self.stalled_until
    }

    /// One fetch cycle: fetch up to `fetch_width` uops in trace order,
    /// modelling IL0/ITLB latency and branch prediction.
    pub fn fetch_cycle(&mut self, trace: &TraceArena, mem: &mut MemHierarchy, now: u64) {
        if now < self.stalled_until {
            return;
        }
        for _ in 0..self.fetch_width {
            if self.cursor >= trace.len() || self.decode_queue.len() >= self.queue_cap {
                return;
            }
            let pc = trace.pc(self.cursor);
            let kind = trace.kind(self.cursor);
            let taken = trace.taken(self.cursor);
            // Instruction-cache access on line change.
            let line = pc >> 6;
            if self.last_line != Some(line) {
                let ready = mem.ifetch(pc, now);
                self.last_line = Some(line);
                if ready > now {
                    // Miss (or guard): the group arrives later; resume then.
                    self.stalled_until = ready;
                    return;
                }
            }
            self.decode_queue.push_back(DecodedUop {
                trace_idx: self.cursor,
                ready_at: now + self.front_end_stages,
            });
            self.cursor += 1;

            if kind.is_control() {
                let target = trace.target(self.cursor - 1);
                let mispredicted = self.predict_and_train(pc, kind, taken, target, now);
                if mispredicted {
                    self.stalled_until = now + self.mispredict_penalty;
                    return;
                }
                if taken {
                    // Fetch group breaks on taken control flow.
                    return;
                }
            }
        }
    }

    /// Predicts one control uop, trains the structures, and reports
    /// whether the front end must redirect (misprediction).
    fn predict_and_train(
        &mut self,
        pc: u64,
        kind: UopKind,
        taken: bool,
        target: u64,
        now: u64,
    ) -> bool {
        match kind {
            UopKind::Branch => {
                self.stats.branches += 1;
                let (pred_taken, index) = self.bp.predict(pc);
                if self.tracker.on_read(index, now) {
                    self.stats.bp_potential_corruptions += 1;
                }
                let effect = self.bp.update(pc, taken);
                self.tracker.on_write(effect, now);
                let target_ok = !taken || self.btb.predict(pc) == Some(target);
                if taken {
                    self.btb.update(pc, target);
                }
                let mispredict = pred_taken != taken || !target_ok;
                if mispredict {
                    self.stats.mispredicts += 1;
                }
                mispredict
            }
            UopKind::Call => {
                self.stats.calls += 1;
                // Push the return address; the callee target comes from
                // the BTB (direct calls train quickly).
                self.rsb.push(pc + 4, now);
                let target_ok = self.btb.predict(pc) == Some(target);
                self.btb.update(pc, target);
                !target_ok
            }
            UopKind::Ret => {
                self.stats.rets += 1;
                let predicted = self.rsb.pop(now);
                let mispredict = predicted != Some(target);
                if mispredict {
                    self.stats.ret_mispredicts += 1;
                }
                mispredict
            }
            _ => false,
        }
    }

    /// Branch statistics (corruption counters folded in).
    #[must_use]
    pub fn stats(&self) -> BranchStats {
        let mut s = self.stats;
        s.rsb_potential_corruptions = self.rsb.potential_corruptions();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, Mechanism, SimConfig};
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::CycleTimeModel;
    use lowvcc_trace::{Trace, Uop};

    fn setup(mechanism: Mechanism) -> (FrontEnd, MemHierarchy) {
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &CycleTimeModel::silverthorne_45nm(),
            mv(500),
            mechanism,
        );
        (FrontEnd::new(&cfg), MemHierarchy::new(&cfg).unwrap())
    }

    /// Test helper: the old width-at-a-time allocation API, expressed
    /// over `pop_decoded`.
    fn take_decoded(fe: &mut FrontEnd, width: usize, now: u64) -> Vec<DecodedUop> {
        (0..width).map_while(|_| fe.pop_decoded(now)).collect()
    }

    fn straight_line_trace(n: usize) -> TraceArena {
        let uops = (0..n).map(|i| Uop::nop(0x40_0000 + 4 * i as u64)).collect();
        TraceArena::from_trace(&Trace::new("straight", uops))
    }

    #[test]
    fn fetches_up_to_width_per_cycle() {
        let (mut fe, mut mem) = setup(Mechanism::Iraw);
        let trace = straight_line_trace(10);
        // Cycle 0: cold IL0 miss stalls fetch.
        fe.fetch_cycle(&trace, &mut mem, 0);
        assert!(fe.queue_empty());
        // After the line arrives, two uops per cycle.
        let mut now = 0;
        while fe.queue_empty() {
            now += 1;
            fe.fetch_cycle(&trace, &mut mem, now);
        }
        assert_eq!(fe.queue_len(), 2);
    }

    #[test]
    fn decode_pipe_delays_allocation() {
        let (mut fe, mut mem) = setup(Mechanism::Iraw);
        let trace = straight_line_trace(4);
        let mut now = 0;
        while fe.queue_empty() {
            fe.fetch_cycle(&trace, &mut mem, now);
            now += 1;
        }
        // Nothing allocatable before the decode depth elapses.
        assert!(take_decoded(&mut fe, 2, now).is_empty());
        let later = now + 6;
        let got = take_decoded(&mut fe, 2, later);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].trace_idx, 0);
    }

    #[test]
    fn biased_branch_learns_and_stops_mispredicting() {
        let (mut fe, mut mem) = setup(Mechanism::Iraw);
        // Same branch, always taken, plus its target uop.
        let mut uops = Vec::new();
        for _ in 0..50 {
            uops.push(Uop::branch(0x40_0100, None, true, 0x40_0000));
            uops.push(Uop::nop(0x40_0000));
        }
        let trace = TraceArena::from_trace(&Trace::new("loop", uops));
        for now in 0..5000u64 {
            fe.fetch_cycle(&trace, &mut mem, now);
            let _ = take_decoded(&mut fe, 2, now);
            if fe.trace_exhausted(&trace) {
                break;
            }
        }
        let s = fe.stats();
        assert!(s.branches >= 40);
        // First iterations mispredict (cold BP/BTB), then it locks on.
        assert!(s.mispredicts >= 1);
        assert!(
            s.mispredict_ratio() < 0.2,
            "ratio {:.3} should be low for a monomorphic branch",
            s.mispredict_ratio()
        );
    }

    #[test]
    fn call_ret_pairs_predict_via_rsb() {
        let (mut fe, mut mem) = setup(Mechanism::Iraw);
        let call_pc = 0x40_0000u64;
        let callee = 0x40_1000u64;
        let mut uops = Vec::new();
        for _ in 0..20 {
            let mut call = Uop::nop(call_pc);
            call.kind = UopKind::Call;
            call.taken = true;
            call.target = callee;
            uops.push(call);
            let mut ret = Uop::nop(callee);
            ret.kind = UopKind::Ret;
            ret.taken = true;
            ret.target = call_pc + 4;
            uops.push(ret);
            uops.push(Uop::nop(call_pc + 4));
        }
        let trace = TraceArena::from_trace(&Trace::new("callret", uops));
        for now in 0..5000u64 {
            fe.fetch_cycle(&trace, &mut mem, now);
            let _ = take_decoded(&mut fe, 2, now);
            if fe.trace_exhausted(&trace) {
                break;
            }
        }
        let s = fe.stats();
        assert_eq!(s.calls, 20);
        assert_eq!(s.rets, 20);
        // After the cold call, returns predict perfectly via the RSB.
        assert!(
            s.ret_mispredicts <= 1,
            "ret mispredicts {}",
            s.ret_mispredicts
        );
    }

    #[test]
    fn corruption_tracking_disabled_when_iraw_off() {
        let (mut fe, mut mem) = setup(Mechanism::Baseline);
        let mut uops = Vec::new();
        for i in 0..40 {
            uops.push(Uop::branch(0x40_0100, None, i % 2 == 0, 0x40_0000));
        }
        let trace = TraceArena::from_trace(&Trace::new("alt", uops));
        let mut now = 0;
        while !fe.trace_exhausted(&trace) && now < 10_000 {
            fe.fetch_cycle(&trace, &mut mem, now);
            let _ = take_decoded(&mut fe, 2, now);
            now += 1;
        }
        assert_eq!(fe.stats().bp_potential_corruptions, 0);
        assert_eq!(fe.stats().rsb_potential_corruptions, 0);
    }
}
