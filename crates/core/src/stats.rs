//! Simulation statistics and the paper's stall attribution.
//!
//! The paper's §5.2 quantifies exactly where IRAW avoidance loses IPC:
//! at 575 mV the total 8.86% drop splits into 8.52% from register-file
//! issue stalls, 0.30% from the DL0 (Store Table repairs + post-fill
//! stalls) and 0.04% from all other blocks. [`StallBreakdown`] mirrors
//! that attribution, and [`SimStats::delayed_instruction_fraction`]
//! reproduces the "13.2% of instructions delayed" statistic.

use lowvcc_sram::Picoseconds;
use lowvcc_uarch::cache::CacheStats;
use lowvcc_uarch::stable::StableStats;
use lowvcc_uarch::tlb::TlbStats;

/// Issue-stall cycles attributed to each IRAW mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StallBreakdown {
    /// Cycles the oldest ready-to-issue instruction was blocked *only* by
    /// the register-file IRAW bubble (sources ready under the baseline
    /// scoreboard, blocked under the extended one).
    pub rf_iraw: u64,
    /// Cycles issue was blocked *only* by the IQ occupancy gate.
    pub iq_iraw: u64,
    /// Cycles a memory op was blocked by a Store Table repair.
    pub dl0_stable: u64,
    /// Cycles a memory op was blocked by the DL0 post-fill guard.
    pub dl0_fill: u64,
    /// Cycles fetch or memory were blocked by the remaining blocks'
    /// post-fill guards (IL0, UL1, TLBs, FB, WCB/EB).
    pub other_fill: u64,
}

impl StallBreakdown {
    /// All IRAW-attributed stall cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.rf_iraw + self.iq_iraw + self.dl0_stable + self.dl0_fill + self.other_fill
    }

    /// DL0-attributed cycles (Store Table + fill guard), the paper's
    /// "0.30%" bucket.
    #[must_use]
    pub fn dl0_total(&self) -> u64 {
        self.dl0_stable + self.dl0_fill
    }
}

/// Branch-prediction statistics, including the §4.5 corruption windows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BranchStats {
    /// Conditional branches fetched.
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Calls fetched.
    pub calls: u64,
    /// Returns fetched.
    pub rets: u64,
    /// Mispredicted returns.
    pub ret_mispredicts: u64,
    /// BP reads that fell within the IRAW window of a direction-bit
    /// flip (potential extra mispredictions; paper: ≈0.0017%).
    pub bp_potential_corruptions: u64,
    /// RSB pops within the IRAW window of their push (paper: none seen).
    pub rsb_potential_corruptions: u64,
}

impl BranchStats {
    /// Misprediction ratio over conditional branches.
    #[must_use]
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Potential BP corruption rate over BP reads (≈ branches).
    #[must_use]
    pub fn bp_corruption_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.bp_potential_corruptions as f64 / self.branches as f64
        }
    }
}

/// Complete statistics of one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed (trace uops).
    pub instructions: u64,
    /// Instructions whose issue was delayed at least one cycle by the
    /// register-file IRAW mechanism (the paper's 13.2% statistic).
    pub iraw_delayed_instructions: u64,
    /// Stall attribution.
    pub stalls: StallBreakdown,
    /// Branch statistics.
    pub branches: BranchStats,
    /// IL0 statistics.
    pub il0: CacheStats,
    /// DL0 statistics.
    pub dl0: CacheStats,
    /// UL1 statistics.
    pub ul1: CacheStats,
    /// ITLB statistics.
    pub itlb: TlbStats,
    /// DTLB statistics.
    pub dtlb: TlbStats,
    /// Store Table statistics.
    pub stable: StableStats,
    /// Off-chip memory accesses.
    pub memory_accesses: u64,
    /// NOOPs injected to drain the IQ past the occupancy gate.
    pub drain_noops: u64,
    /// Issue cycles lost to register-file write-port contention
    /// (non-zero only for the Extra Bypass baseline).
    pub write_port_stalls: u64,
}

impl SimStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of instructions delayed by RF IRAW avoidance.
    #[must_use]
    pub fn delayed_instruction_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.iraw_delayed_instructions as f64 / self.instructions as f64
        }
    }

    /// Fraction of cycles attributed to each IRAW stall source, as
    /// `(rf, iq, dl0, other)` — comparable to the paper's 575 mV
    /// breakdown.
    #[must_use]
    pub fn stall_fractions(&self) -> (f64, f64, f64, f64) {
        if self.cycles == 0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let c = self.cycles as f64;
        (
            self.stalls.rf_iraw as f64 / c,
            self.stalls.iq_iraw as f64 / c,
            self.stalls.dl0_total() as f64 / c,
            self.stalls.other_fill as f64 / c,
        )
    }
}

/// A finished run: statistics plus the clock that turns cycles into time.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Run statistics.
    pub stats: SimStats,
    /// Cycle time of the run.
    pub cycle_time: Picoseconds,
}

impl SimResult {
    /// Wall-clock execution time in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.stats.cycles as f64 * self.cycle_time.seconds()
    }

    /// Instructions per second.
    #[must_use]
    pub fn instructions_per_second(&self) -> f64 {
        if self.seconds() == 0.0 {
            0.0
        } else {
            self.stats.instructions as f64 / self.seconds()
        }
    }

    /// Speedup of `self` over `other` for the same work (time ratio).
    #[must_use]
    pub fn speedup_over(&self, other: &SimResult) -> f64 {
        other.seconds() / self.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals() {
        let b = StallBreakdown {
            rf_iraw: 100,
            iq_iraw: 5,
            dl0_stable: 3,
            dl0_fill: 7,
            other_fill: 2,
        };
        assert_eq!(b.total(), 117);
        assert_eq!(b.dl0_total(), 10);
    }

    #[test]
    fn ipc_and_fractions() {
        let stats = SimStats {
            cycles: 1000,
            instructions: 1400,
            iraw_delayed_instructions: 185,
            stalls: StallBreakdown {
                rf_iraw: 85,
                iq_iraw: 1,
                dl0_stable: 2,
                dl0_fill: 1,
                other_fill: 1,
            },
            ..SimStats::default()
        };
        assert!((stats.ipc() - 1.4).abs() < 1e-12);
        assert!((stats.delayed_instruction_fraction() - 185.0 / 1400.0).abs() < 1e-12);
        let (rf, iq, dl0, other) = stats.stall_fractions();
        assert!((rf - 0.085).abs() < 1e-12);
        assert!((iq - 0.001).abs() < 1e-12);
        assert!((dl0 - 0.003).abs() < 1e-12);
        assert!((other - 0.001).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zero_not_nan() {
        let stats = SimStats::default();
        assert_eq!(stats.ipc(), 0.0);
        assert_eq!(stats.delayed_instruction_fraction(), 0.0);
        assert_eq!(stats.stall_fractions(), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(BranchStats::default().mispredict_ratio(), 0.0);
        assert_eq!(BranchStats::default().bp_corruption_rate(), 0.0);
    }

    #[test]
    fn result_time_and_speedup() {
        let fast = SimResult {
            stats: SimStats {
                cycles: 1000,
                instructions: 1000,
                ..SimStats::default()
            },
            cycle_time: Picoseconds::new(500.0),
        };
        let slow = SimResult {
            stats: SimStats {
                cycles: 1000,
                instructions: 1000,
                ..SimStats::default()
            },
            cycle_time: Picoseconds::new(1000.0),
        };
        assert!((fast.seconds() - 5e-7).abs() < 1e-18);
        assert!((fast.speedup_over(&slow) - 2.0).abs() < 1e-12);
        assert!(fast.instructions_per_second() > slow.instructions_per_second());
    }
}
