//! Typed errors for configuration validation and simulation.
//!
//! [`ConfigError`] covers everything [`CoreConfig::validate`] and
//! [`SimConfig::validate`] can reject; [`SimError`] is the boundary type
//! of the simulator itself — either a bad configuration or a detected
//! live-lock. `From` impls let `?` lift cache-geometry and configuration
//! failures at each crate seam.
//!
//! [`CoreConfig::validate`]: crate::config::CoreConfig::validate
//! [`SimConfig::validate`]: crate::config::SimConfig::validate

use std::fmt;

use lowvcc_uarch::cache::CacheConfigError;

/// Error validating a [`CoreConfig`](crate::config::CoreConfig) or
/// [`SimConfig`](crate::config::SimConfig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A fetch/alloc/issue width is zero.
    ZeroWidth,
    /// The IQ capacity is not a power of two.
    IqNotPowerOfTwo {
        /// The rejected entry count.
        entries: usize,
    },
    /// One of the cache geometries is invalid.
    Cache {
        /// Which cache (`"IL0"`, `"DL0"`, `"UL1"`).
        which: &'static str,
        /// The underlying geometry error.
        source: CacheConfigError,
    },
    /// The scoreboard shift register lacks the structural minimum of
    /// `bypass_levels + 2` bits (bypass window + bubble + trailing ready).
    ScoreboardMissingWindowBits {
        /// Scoreboard width in bits.
        width: u32,
        /// Bypass network levels.
        bypass_levels: u32,
    },
    /// The scoreboard shift register cannot hold the bypass+bubble bits.
    ScoreboardTooNarrow {
        /// Scoreboard width in bits.
        width: u32,
        /// Largest short-latency producer pattern.
        max_latency: u32,
        /// Bypass network levels.
        bypass_levels: u32,
        /// Stabilization cycles `N`.
        stabilization_cycles: u32,
    },
    /// The Store Table has no physical entries.
    NoStoreTableEntries,
    /// Off-chip memory latency is not positive.
    NonPositiveMemoryLatency {
        /// The rejected latency in nanoseconds.
        latency_ns: f64,
    },
    /// The derived cycle time is not positive.
    NonPositiveCycleTime,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroWidth => f.write_str("pipeline widths must be positive"),
            Self::IqNotPowerOfTwo { entries } => {
                write!(f, "IQ entries {entries} must be a power of two")
            }
            Self::Cache { which, source } => write!(f, "{which}: {source}"),
            Self::ScoreboardMissingWindowBits {
                width,
                bypass_levels,
            } => write!(
                f,
                "scoreboard width {width} too narrow for the bypass+bubble bits \
                 (needs at least bypass {bypass_levels} + 2)"
            ),
            Self::ScoreboardTooNarrow {
                width,
                max_latency,
                bypass_levels,
                stabilization_cycles,
            } => write!(
                f,
                "scoreboard width {width} too narrow for latency {max_latency} \
                 + bypass {bypass_levels} + N {stabilization_cycles}"
            ),
            Self::NoStoreTableEntries => {
                f.write_str("store table needs at least one physical entry")
            }
            Self::NonPositiveMemoryLatency { latency_ns } => {
                write!(f, "memory latency {latency_ns} ns must be positive")
            }
            Self::NonPositiveCycleTime => f.write_str("cycle time must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Cache { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Error running a simulation to completion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimError {
    /// The run configuration failed validation.
    Config(ConfigError),
    /// The pipeline stopped making forward progress — a simulator bug
    /// surfaced rather than a hang.
    NoProgress {
        /// Cycle count at which the budget was exhausted.
        cycles: u64,
        /// Instructions committed so far.
        committed: u64,
        /// Total instructions of the trace.
        total: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::NoProgress {
                cycles,
                committed,
                total,
            } => write!(
                f,
                "no forward progress after {cycles} cycles \
                 ({committed} of {total} uops committed)"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Config(e) => Some(e),
            Self::NoProgress { .. } => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn config_error_displays_and_chains() {
        let e = ConfigError::Cache {
            which: "DL0",
            source: CacheConfigError::ZeroDimension,
        };
        assert!(e.to_string().starts_with("DL0:"));
        assert!(e.source().is_some());
    }

    #[test]
    fn sim_error_lifts_config_error() {
        let e: SimError = ConfigError::ZeroWidth.into();
        assert!(matches!(e, SimError::Config(ConfigError::ZeroWidth)));
        assert!(e.to_string().contains("invalid configuration"));
        let np = SimError::NoProgress {
            cycles: 10,
            committed: 1,
            total: 5,
        };
        assert!(np.to_string().contains("1 of 5"));
        assert!(np.source().is_none());
    }
}
