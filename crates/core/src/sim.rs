//! The public simulator facade.

use lowvcc_trace::{Trace, TraceArena};

use crate::config::SimConfig;
use crate::error::{ConfigError, SimError};
use crate::pipeline::Engine;
use crate::stats::SimResult;

/// A configured simulator, ready to replay traces.
///
/// ```
/// use lowvcc_core::{CoreConfig, Mechanism, SimConfig, Simulator};
/// use lowvcc_sram::{CycleTimeModel, Millivolts};
/// use lowvcc_trace::{TraceSpec, WorkloadFamily};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let timing = CycleTimeModel::silverthorne_45nm();
/// let vcc = Millivolts::new(500)?;
/// let cfg = SimConfig::at_vcc(CoreConfig::silverthorne(), &timing, vcc, Mechanism::Iraw);
/// let sim = Simulator::new(cfg)?;
/// let trace = TraceSpec::new(WorkloadFamily::Kernel, 0, 2_000).build()?;
/// let result = sim.run(&trace)?;
/// assert_eq!(result.stats.instructions, 2_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a simulator, validating the configuration once.
    ///
    /// # Errors
    ///
    /// Returns the first configuration problem found.
    pub fn new(cfg: SimConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self { cfg })
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Replays `trace` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoProgress`] if the engine detects a live-lock
    /// (a simulator bug surfaced rather than a hang).
    pub fn run(&self, trace: &Trace) -> Result<SimResult, SimError> {
        Engine::new(self.cfg.clone())?.run(&TraceArena::from_trace(trace))
    }

    /// Replays an already-decoded trace arena to completion — the
    /// decode-once entry point batched sweeps build on.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::run`].
    pub fn run_arena(&self, trace: &TraceArena) -> Result<SimResult, SimError> {
        Engine::new(self.cfg.clone())?.run(trace)
    }

    /// Replays `trace` on the naive cycle-by-cycle reference stepper —
    /// the semantics [`Simulator::run`]'s event-driven fast path must
    /// reproduce bit for bit. Several times slower; exists for the
    /// equivalence suite and for bisecting fast-path regressions.
    ///
    /// # Errors
    ///
    /// Same contract as [`Simulator::run`].
    pub fn run_naive(&self, trace: &Trace) -> Result<SimResult, SimError> {
        Engine::new(self.cfg.clone())?.run_naive(&TraceArena::from_trace(trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, Mechanism};
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::CycleTimeModel;
    use lowvcc_trace::{TraceSpec, WorkloadFamily};

    #[test]
    fn runs_a_synthetic_trace_end_to_end() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(500),
            Mechanism::Iraw,
        );
        let sim = Simulator::new(cfg).unwrap();
        let trace = TraceSpec::new(WorkloadFamily::SpecInt, 1, 20_000)
            .build()
            .unwrap();
        let result = sim.run(&trace).unwrap();
        assert_eq!(result.stats.instructions, 20_000);
        assert!(result.stats.ipc() > 0.1 && result.stats.ipc() < 2.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(475),
            Mechanism::Iraw,
        );
        let sim = Simulator::new(cfg).unwrap();
        let trace = TraceSpec::new(WorkloadFamily::Office, 2, 3_000)
            .build()
            .unwrap();
        let a = sim.run(&trace).unwrap();
        let b = sim.run(&trace).unwrap();
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn rejects_invalid_config() {
        let timing = CycleTimeModel::silverthorne_45nm();
        let mut cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &timing,
            mv(500),
            Mechanism::Iraw,
        );
        cfg.core.iq_entries = 33;
        assert!(Simulator::new(cfg).is_err());
    }
}
