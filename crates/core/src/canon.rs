//! Canonical byte encodings, the content-addressed [`SimKey`], and the
//! on-disk [`SimResult`] codec behind the result cache.
//!
//! The simulator is deterministic (DESIGN.md §6): a run is a pure
//! function of `(SimConfig, TraceSpec)`. That makes keyed reuse sound —
//! two runs with the same canonical encoding of their inputs produce
//! bit-identical [`SimStats`]. This module defines
//!
//! * a **canonical encoding** of every simulation input (fixed field
//!   order, fixed-width little-endian integers, `f64` as IEEE-754 bits,
//!   length-prefixed strings) — no `Hash`-derive, no layout dependence;
//! * [`SimKey`] — a hand-rolled 128-bit FNV-1a over that encoding,
//!   further covering [`ENGINE_SEMANTICS_VERSION`] so a change to what
//!   the engine *means* invalidates every cached result at once;
//! * [`encode_sim_result`]/[`decode_sim_result`] — a self-describing,
//!   checksummed byte format for [`SimResult`] suitable for
//!   atomic-rename persistence. Decoding is strict: bad magic, an
//!   unknown format, a stale engine version, a checksum mismatch or
//!   trailing bytes all surface a typed [`CanonError`] rather than
//!   garbage statistics.

use std::fmt;

use lowvcc_sram::Picoseconds;
use lowvcc_trace::TraceSpec;
use lowvcc_uarch::cache::CacheConfig;
use lowvcc_uarch::replacement::Policy;

use crate::config::{CoreConfig, Mechanism, SimConfig};
use crate::stats::{BranchStats, SimResult, SimStats, StallBreakdown};

/// Version of the engine's *semantics* — what a `(SimConfig, TraceSpec)`
/// pair means in cycles and stall attribution. Bump this whenever a
/// change alters simulation output for some input (a new stall source, a
/// fixed latency, a different replacement decision…); every [`SimKey`]
/// covers it, so persisted results from older semantics silently miss
/// instead of being served stale.
pub const ENGINE_SEMANTICS_VERSION: u32 = 1;

/// Format version of the [`encode_sim_result`] byte layout (bumped when
/// the *serialization* changes, independent of engine semantics).
pub const RESULT_FORMAT_VERSION: u32 = 1;

const RESULT_MAGIC: &[u8; 4] = b"LVCR";

// --- FNV-1a ---------------------------------------------------------------

const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// 64-bit FNV-1a over `bytes` (used as the payload checksum).
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV64_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV64_PRIME)
    })
}

/// 128-bit FNV-1a over `bytes` (used for content addressing).
#[must_use]
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    bytes.iter().fold(FNV128_OFFSET, |h, &b| {
        (h ^ u128::from(b)).wrapping_mul(FNV128_PRIME)
    })
}

// --- canonical writer / reader -------------------------------------------

/// Append-only canonical encoder: fixed-width little-endian integers,
/// IEEE-754 bit patterns for floats, length-prefixed UTF-8 strings.
#[derive(Debug, Default, Clone)]
pub struct CanonWriter {
    buf: Vec<u8>,
}

impl CanonWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning its buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64` (canonical width on every platform).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Strict decoder over a canonical byte slice.
#[derive(Debug)]
struct CanonReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> CanonReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CanonError> {
        let end = self.pos.checked_add(n).ok_or(CanonError::Truncated {
            needed: n,
            have: self.buf.len() - self.pos,
        })?;
        if end > self.buf.len() {
            return Err(CanonError::Truncated {
                needed: n,
                have: self.buf.len() - self.pos,
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CanonError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CanonError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, CanonError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Decoding failure of a canonical [`SimResult`] record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanonError {
    /// The record ends before a required field.
    Truncated {
        /// Bytes the next field needs.
        needed: usize,
        /// Bytes actually left.
        have: usize,
    },
    /// The record does not start with the `LVCR` magic.
    BadMagic,
    /// The serialization format version is unknown to this build.
    UnsupportedFormat {
        /// Version found in the record.
        found: u32,
    },
    /// The record was produced under different engine semantics.
    EngineVersionMismatch {
        /// Version found in the record.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The payload checksum does not match (bit rot or a torn write).
    ChecksumMismatch,
    /// Well-formed record followed by unexpected extra bytes.
    TrailingBytes {
        /// Count of bytes past the record end.
        extra: usize,
    },
}

impl fmt::Display for CanonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { needed, have } => {
                write!(
                    f,
                    "record truncated: field needs {needed} bytes, {have} left"
                )
            }
            Self::BadMagic => f.write_str("bad magic (not a lowvcc result record)"),
            Self::UnsupportedFormat { found } => {
                write!(f, "unsupported result format version {found}")
            }
            Self::EngineVersionMismatch { found, expected } => write!(
                f,
                "record from engine semantics v{found}, this build is v{expected}"
            ),
            Self::ChecksumMismatch => f.write_str("payload checksum mismatch"),
            Self::TrailingBytes { extra } => {
                write!(f, "{extra} unexpected bytes after record end")
            }
        }
    }
}

impl std::error::Error for CanonError {}

// --- canonical input encodings --------------------------------------------

fn encode_cache_config(w: &mut CanonWriter, c: &CacheConfig) {
    w.usize(c.size_bytes);
    w.usize(c.ways);
    w.usize(c.line_bytes);
    w.u8(match c.policy {
        Policy::Lru => 0,
        Policy::RoundRobin => 1,
        Policy::Random => 2,
    });
}

fn encode_core_config(w: &mut CanonWriter, c: &CoreConfig) {
    w.usize(c.fetch_width);
    w.usize(c.alloc_width);
    w.usize(c.issue_width);
    w.usize(c.iq_entries);
    w.u32(c.front_end_stages);
    w.u32(c.bypass_levels);
    w.u32(c.scoreboard_width);
    encode_cache_config(w, &c.il0);
    encode_cache_config(w, &c.dl0);
    encode_cache_config(w, &c.ul1);
    w.usize(c.itlb_entries);
    w.usize(c.dtlb_entries);
    w.usize(c.bp_entries);
    w.usize(c.btb_entries);
    w.usize(c.rsb_entries);
    w.usize(c.fb_entries);
    w.usize(c.wcb_entries);
    w.usize(c.stable_max_entries);
    w.u32(c.lat_alu);
    w.u32(c.lat_mul);
    w.u32(c.lat_div);
    w.u32(c.lat_fp_add);
    w.u32(c.lat_fp_mul);
    w.u32(c.lat_fp_div);
    w.u32(c.lat_dl0_hit);
    w.u32(c.lat_ul1);
    w.u32(c.page_walk_cycles);
    w.u32(c.mispredict_penalty);
    w.bool(c.il0_next_line_prefetch);
    w.f64(c.memory_latency_ns);
}

/// Canonically encodes every simulation input of `cfg` — including the
/// derived cycle time, the stabilization count and the baseline-specific
/// knobs, so e.g. the stall-free reference run (same clock, `N = 0`)
/// keys differently from the IRAW run it shadows.
pub fn encode_sim_config(w: &mut CanonWriter, cfg: &SimConfig) {
    encode_core_config(w, &cfg.core);
    w.u32(cfg.vcc.millivolts());
    w.u8(match cfg.mechanism {
        Mechanism::Baseline => 0,
        Mechanism::Iraw => 1,
        Mechanism::IdealLogic => 2,
    });
    w.f64(cfg.cycle_time.picos());
    w.u32(cfg.stabilization_cycles);
    w.u32(cfg.extra_write_port_cycles);
    w.usize(cfg.disabled_lines.0);
    w.usize(cfg.disabled_lines.1);
    w.usize(cfg.disabled_lines.2);
    w.u64(cfg.fault_seed);
}

/// Canonically encodes a trace *specification* (family, seed, length) —
/// the generator is deterministic, so the spec stands for the trace
/// contents without hashing megabytes of uops.
pub fn encode_trace_spec(w: &mut CanonWriter, spec: &TraceSpec) {
    w.str(spec.family.name());
    w.u64(spec.seed);
    w.usize(spec.len);
}

// --- SimKey ---------------------------------------------------------------

/// Content address of one simulation: a 128-bit FNV-1a over the
/// canonical encoding of `(engine semantics version, SimConfig,
/// TraceSpec)`.
///
/// ```
/// use lowvcc_core::{sim_key, CoreConfig, Mechanism, SimConfig};
/// use lowvcc_sram::{CycleTimeModel, Millivolts};
/// use lowvcc_trace::{TraceSpec, WorkloadFamily};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let timing = CycleTimeModel::silverthorne_45nm();
/// let cfg = SimConfig::at_vcc(
///     CoreConfig::silverthorne(),
///     &timing,
///     Millivolts::new(500)?,
///     Mechanism::Iraw,
/// );
/// let spec = TraceSpec::new(WorkloadFamily::SpecInt, 0, 10_000);
/// let a = sim_key(&cfg, &spec);
/// let b = sim_key(&cfg, &spec);
/// assert_eq!(a, b);
/// assert_eq!(a.to_hex().len(), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimKey(u128);

impl SimKey {
    /// The raw 128-bit value.
    #[must_use]
    pub fn value(self) -> u128 {
        self.0
    }

    /// Reconstructs a key from its raw 128-bit value — the inverse of
    /// [`SimKey::value`]. Used when a key round-trips through an
    /// external representation (a bundle file, a `peer_get` request)
    /// rather than being derived from simulation inputs.
    #[must_use]
    pub fn from_value(value: u128) -> Self {
        Self(value)
    }

    /// Parses the lower-case 32-character hex rendering produced by
    /// [`SimKey::to_hex`]. Rejects anything that is not exactly 32 hex
    /// digits, so a malformed wire key can never alias a real one.
    #[must_use]
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 32 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(hex, 16).ok().map(Self)
    }

    /// Lower-case 32-character hex rendering (the on-disk file stem).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for SimKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Computes the [`SimKey`] of running `spec` under `cfg`.
#[must_use]
pub fn sim_key(cfg: &SimConfig, spec: &TraceSpec) -> SimKey {
    let mut w = CanonWriter::new();
    w.str("lowvcc-simkey");
    w.u32(ENGINE_SEMANTICS_VERSION);
    encode_sim_config(&mut w, cfg);
    encode_trace_spec(&mut w, spec);
    SimKey(fnv1a_128(w.bytes()))
}

// --- SimResult codec ------------------------------------------------------

fn encode_stats_payload(w: &mut CanonWriter, r: &SimResult) {
    w.f64(r.cycle_time.picos());
    let s = &r.stats;
    w.u64(s.cycles);
    w.u64(s.instructions);
    w.u64(s.iraw_delayed_instructions);
    w.u64(s.stalls.rf_iraw);
    w.u64(s.stalls.iq_iraw);
    w.u64(s.stalls.dl0_stable);
    w.u64(s.stalls.dl0_fill);
    w.u64(s.stalls.other_fill);
    w.u64(s.branches.branches);
    w.u64(s.branches.mispredicts);
    w.u64(s.branches.calls);
    w.u64(s.branches.rets);
    w.u64(s.branches.ret_mispredicts);
    w.u64(s.branches.bp_potential_corruptions);
    w.u64(s.branches.rsb_potential_corruptions);
    for c in [&s.il0, &s.dl0, &s.ul1] {
        w.u64(c.accesses);
        w.u64(c.hits);
        w.u64(c.misses);
        w.u64(c.fills);
        w.u64(c.evictions);
    }
    for t in [&s.itlb, &s.dtlb] {
        w.u64(t.accesses);
        w.u64(t.hits);
        w.u64(t.misses);
    }
    w.u64(s.stable.probes);
    w.u64(s.stable.full_matches);
    w.u64(s.stable.set_matches);
    w.u64(s.stable.stores_replayed);
    w.u64(s.memory_accesses);
    w.u64(s.drain_noops);
    w.u64(s.write_port_stalls);
}

/// Serializes a [`SimResult`] to the canonical record format:
/// `LVCR` magic, format version, engine-semantics version, the stats
/// payload, and a trailing FNV-1a 64 checksum over everything before it.
#[must_use]
pub fn encode_sim_result(r: &SimResult) -> Vec<u8> {
    let mut w = CanonWriter::new();
    w.buf.extend_from_slice(RESULT_MAGIC);
    w.u32(RESULT_FORMAT_VERSION);
    w.u32(ENGINE_SEMANTICS_VERSION);
    encode_stats_payload(&mut w, r);
    let sum = fnv1a_64(w.bytes());
    w.u64(sum);
    w.into_bytes()
}

/// Parses a canonical [`SimResult`] record produced by
/// [`encode_sim_result`].
///
/// # Errors
///
/// Returns a [`CanonError`] on any structural problem: wrong magic,
/// unknown format version, foreign engine-semantics version, truncation,
/// checksum mismatch, or trailing bytes.
pub fn decode_sim_result(bytes: &[u8]) -> Result<SimResult, CanonError> {
    let mut r = CanonReader::new(bytes);
    if r.take(4)? != RESULT_MAGIC {
        return Err(CanonError::BadMagic);
    }
    let format = r.u32()?;
    if format != RESULT_FORMAT_VERSION {
        return Err(CanonError::UnsupportedFormat { found: format });
    }
    let engine = r.u32()?;
    if engine != ENGINE_SEMANTICS_VERSION {
        return Err(CanonError::EngineVersionMismatch {
            found: engine,
            expected: ENGINE_SEMANTICS_VERSION,
        });
    }
    let cycle_time = Picoseconds::new(r.f64()?);
    let cycles = r.u64()?;
    let instructions = r.u64()?;
    let iraw_delayed_instructions = r.u64()?;
    let stalls = StallBreakdown {
        rf_iraw: r.u64()?,
        iq_iraw: r.u64()?,
        dl0_stable: r.u64()?,
        dl0_fill: r.u64()?,
        other_fill: r.u64()?,
    };
    let branches = BranchStats {
        branches: r.u64()?,
        mispredicts: r.u64()?,
        calls: r.u64()?,
        rets: r.u64()?,
        ret_mispredicts: r.u64()?,
        bp_potential_corruptions: r.u64()?,
        rsb_potential_corruptions: r.u64()?,
    };
    let mut caches = Vec::with_capacity(3);
    for _ in 0..3 {
        caches.push(lowvcc_uarch::cache::CacheStats {
            accesses: r.u64()?,
            hits: r.u64()?,
            misses: r.u64()?,
            fills: r.u64()?,
            evictions: r.u64()?,
        });
    }
    let mut tlbs = Vec::with_capacity(2);
    for _ in 0..2 {
        tlbs.push(lowvcc_uarch::tlb::TlbStats {
            accesses: r.u64()?,
            hits: r.u64()?,
            misses: r.u64()?,
        });
    }
    let stable = lowvcc_uarch::stable::StableStats {
        probes: r.u64()?,
        full_matches: r.u64()?,
        set_matches: r.u64()?,
        stores_replayed: r.u64()?,
    };
    let memory_accesses = r.u64()?;
    let drain_noops = r.u64()?;
    let write_port_stalls = r.u64()?;
    let payload_end = r.pos;
    let sum = r.u64()?;
    if fnv1a_64(&bytes[..payload_end]) != sum {
        return Err(CanonError::ChecksumMismatch);
    }
    if r.remaining() != 0 {
        return Err(CanonError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    let ul1 = caches.pop().expect("pushed 3");
    let dl0 = caches.pop().expect("pushed 3");
    let il0 = caches.pop().expect("pushed 3");
    let dtlb = tlbs.pop().expect("pushed 2");
    let itlb = tlbs.pop().expect("pushed 2");
    Ok(SimResult {
        stats: SimStats {
            cycles,
            instructions,
            iraw_delayed_instructions,
            stalls,
            branches,
            il0,
            dl0,
            ul1,
            itlb,
            dtlb,
            stable,
            memory_accesses,
            drain_noops,
            write_port_stalls,
        },
        cycle_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lowvcc_sram::voltage::mv;
    use lowvcc_sram::CycleTimeModel;
    use lowvcc_trace::WorkloadFamily;

    fn cfg(vcc_mv: u32, mech: Mechanism) -> SimConfig {
        let timing = CycleTimeModel::silverthorne_45nm();
        SimConfig::at_vcc(CoreConfig::silverthorne(), &timing, mv(vcc_mv), mech)
    }

    fn spec() -> TraceSpec {
        TraceSpec::new(WorkloadFamily::SpecInt, 3, 10_000)
    }

    #[test]
    fn fnv_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
        assert_eq!(fnv1a_128(b""), FNV128_OFFSET);
    }

    #[test]
    fn key_is_deterministic_and_input_sensitive() {
        let base = sim_key(&cfg(500, Mechanism::Iraw), &spec());
        assert_eq!(base, sim_key(&cfg(500, Mechanism::Iraw), &spec()));

        // Every input axis moves the key.
        assert_ne!(base, sim_key(&cfg(500, Mechanism::Baseline), &spec()));
        assert_ne!(base, sim_key(&cfg(525, Mechanism::Iraw), &spec()));
        let mut other_spec = spec();
        other_spec.seed = 4;
        assert_ne!(base, sim_key(&cfg(500, Mechanism::Iraw), &other_spec));
        let mut longer = spec();
        longer.len += 1;
        assert_ne!(base, sim_key(&cfg(500, Mechanism::Iraw), &longer));
        let mut family = spec();
        family.family = WorkloadFamily::Server;
        assert_ne!(base, sim_key(&cfg(500, Mechanism::Iraw), &family));

        // Config fields beyond the (core, vcc, mechanism) triple count
        // too: the stall-free reference of the §5.2 experiment differs
        // from the IRAW run only in stabilization_cycles.
        let mut free = cfg(575, Mechanism::Iraw);
        free.stabilization_cycles = 0;
        assert_ne!(
            sim_key(&cfg(575, Mechanism::Iraw), &spec()),
            sim_key(&free, &spec())
        );
    }

    #[test]
    fn hex_rendering_is_stable() {
        let k = sim_key(&cfg(500, Mechanism::Iraw), &spec());
        assert_eq!(k.to_hex().len(), 32);
        assert_eq!(k.to_hex(), format!("{k}"));
        assert!(k.to_hex().chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn keys_round_trip_through_value_and_hex() {
        let k = sim_key(&cfg(500, Mechanism::Iraw), &spec());
        assert_eq!(SimKey::from_value(k.value()), k);
        assert_eq!(SimKey::from_hex(&k.to_hex()), Some(k));
        // Anything that is not exactly 32 hex digits is rejected.
        assert_eq!(SimKey::from_hex(""), None);
        assert_eq!(SimKey::from_hex("abc"), None);
        assert_eq!(SimKey::from_hex(&"0".repeat(33)), None);
        assert_eq!(SimKey::from_hex(&format!("{}g", "0".repeat(31))), None);
    }

    #[test]
    fn result_round_trips_bit_identically() {
        let sim = crate::sim::Simulator::new(cfg(500, Mechanism::Iraw)).unwrap();
        let trace = spec().build().unwrap();
        let r = sim.run(&trace).unwrap();
        let bytes = encode_sim_result(&r);
        let back = decode_sim_result(&bytes).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn decoder_rejects_corruption() {
        let sim = crate::sim::Simulator::new(cfg(500, Mechanism::Iraw)).unwrap();
        let trace = spec().build().unwrap();
        let r = sim.run(&trace).unwrap();
        let good = encode_sim_result(&r);

        assert_eq!(decode_sim_result(b"nope"), Err(CanonError::BadMagic));

        let mut truncated = good.clone();
        truncated.truncate(good.len() - 9);
        assert!(matches!(
            decode_sim_result(&truncated),
            Err(CanonError::Truncated { .. })
        ));

        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert_eq!(
            decode_sim_result(&flipped),
            Err(CanonError::ChecksumMismatch)
        );

        let mut extended = good.clone();
        extended.push(0);
        assert_eq!(
            decode_sim_result(&extended),
            Err(CanonError::TrailingBytes { extra: 1 })
        );

        let mut wrong_engine = good.clone();
        wrong_engine[8..12].copy_from_slice(&(ENGINE_SEMANTICS_VERSION + 1).to_le_bytes());
        assert!(matches!(
            decode_sim_result(&wrong_engine),
            Err(CanonError::EngineVersionMismatch { .. })
        ));

        let mut wrong_format = good;
        wrong_format[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            decode_sim_result(&wrong_format),
            Err(CanonError::UnsupportedFormat { found: 99 })
        );
    }
}
