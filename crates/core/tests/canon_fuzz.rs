//! Seeded fuzz coverage for the `LVCR` record decoder.
//!
//! The self-healing store (see `lowvcc-bench`) leans entirely on one
//! property: **no mutation of a valid record decodes** — it must fail
//! closed with a typed [`CanonError`], never panic, and never hand back
//! garbage statistics. This suite drives that property with a seeded
//! [`SimRng`] loop (reproducible: a failure prints the mutation that
//! caused it) over the two shapes disk damage actually takes:
//!
//! * **prefix truncations** — torn writes, short reads;
//! * **single-bit flips** — bit rot in cold storage, the exact fault a
//!   low-Vcc SRAM cell exhibits below Vccmin.

use lowvcc_core::{
    decode_sim_result, encode_sim_result, CanonError, CoreConfig, Mechanism, SimConfig, Simulator,
};
use lowvcc_sram::voltage::mv;
use lowvcc_sram::CycleTimeModel;
use lowvcc_trace::rng::SimRng;
use lowvcc_trace::{TraceSpec, WorkloadFamily};

/// Encoded records spanning both mechanisms and a couple of operating
/// points, so mutations hit payloads with different bit patterns.
fn base_records() -> Vec<Vec<u8>> {
    let timing = CycleTimeModel::silverthorne_45nm();
    let mut records = Vec::new();
    for (vcc, mech, family) in [
        (500u32, Mechanism::Iraw, WorkloadFamily::Kernel),
        (575, Mechanism::Baseline, WorkloadFamily::SpecInt),
        (700, Mechanism::Iraw, WorkloadFamily::SpecFp),
    ] {
        let cfg = SimConfig::at_vcc(CoreConfig::silverthorne(), &timing, mv(vcc), mech);
        let trace = TraceSpec::new(family, 0, 2_000)
            .build()
            .expect("trace builds");
        let result = Simulator::new(cfg)
            .expect("preset config is valid")
            .run(&trace)
            .expect("simulation runs");
        records.push(encode_sim_result(&result));
    }
    records
}

#[test]
fn every_prefix_truncation_fails_closed() {
    for (i, record) in base_records().iter().enumerate() {
        assert!(
            decode_sim_result(record).is_ok(),
            "base record {i} must decode"
        );
        let mut rng = SimRng::seed_from(0xF007 + i as u64);
        // Every boundary-adjacent length plus a seeded spray across the
        // whole record: truncation must never pass and never panic.
        let sampled = (0..2_000).map(|_| rng.below(record.len() as u64) as usize);
        for len in (0..16)
            .chain(record.len() - 16..record.len())
            .chain(sampled)
        {
            let err = decode_sim_result(&record[..len])
                .expect_err("a truncated record must never decode");
            assert!(
                matches!(err, CanonError::Truncated { .. } | CanonError::BadMagic),
                "truncation to {len} bytes gave unexpected verdict {err:?}"
            );
        }
    }
}

#[test]
fn every_single_bit_flip_fails_closed() {
    for (i, record) in base_records().iter().enumerate() {
        let bits = record.len() as u64 * 8;
        let mut rng = SimRng::seed_from(0xB17F11B + i as u64);
        // All bits of the header plus a seeded spray over the payload
        // and checksum; 8 × record-length iterations would also pass but
        // triple the suite's runtime for no extra shape coverage.
        let sampled = (0..4_000).map(|_| rng.below(bits));
        for bit in (0..96).chain(bits - 64..bits).chain(sampled) {
            let mut bytes = record.clone();
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            let err =
                decode_sim_result(&bytes).expect_err("a bit-flipped record must never decode");
            // The verdict is position-dependent; what matters is that it
            // is typed, closed, and correct for the region hit.
            match bit {
                0..=31 => assert_eq!(err, CanonError::BadMagic, "flip in magic (bit {bit})"),
                32..=63 => assert!(
                    matches!(err, CanonError::UnsupportedFormat { .. }),
                    "flip in format version (bit {bit}) gave {err:?}"
                ),
                64..=95 => assert!(
                    matches!(err, CanonError::EngineVersionMismatch { .. }),
                    "flip in engine version (bit {bit}) gave {err:?}"
                ),
                _ => assert_eq!(
                    err,
                    CanonError::ChecksumMismatch,
                    "flip in payload/checksum (bit {bit})"
                ),
            }
        }
    }
}

#[test]
fn appended_bytes_and_foreign_blobs_fail_closed() {
    let record = base_records().remove(0);
    // Trailing garbage after a well-formed record.
    let mut padded = record.clone();
    padded.extend_from_slice(&[0u8; 7]);
    assert_eq!(
        decode_sim_result(&padded),
        Err(CanonError::TrailingBytes { extra: 7 })
    );
    // Random blobs (seeded) of assorted sizes: never a panic, never Ok.
    let mut rng = SimRng::seed_from(0xD15C0);
    for len in [0usize, 1, 3, 4, 8, 64, 320, 321, 4096] {
        let blob: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        assert!(
            decode_sim_result(&blob).is_err(),
            "{len}-byte random blob must not decode"
        );
    }
}
