//! Property test for the batch path's central invariant: a reused
//! [`EngineWorkspace`] produces bit-identical `SimStats` to a fresh
//! engine, across all 7 trace families × 3 mechanisms (satellite of the
//! batched-sweep PR).
//!
//! One workspace threads through every run in sequence, so each run's
//! engine state is `reset()` from a *different* predecessor — any field
//! a reset forgets to restore shows up as a stats mismatch on some
//! (family, mechanism) pair.

use lowvcc_core::{CoreConfig, EngineWorkspace, Mechanism, SimConfig, Simulator};
use lowvcc_sram::voltage::mv;
use lowvcc_sram::CycleTimeModel;
use lowvcc_trace::{TraceArena, TraceSpec, WorkloadFamily};

#[test]
fn reset_workspace_matches_fresh_engine_across_families_and_mechanisms() {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let mut ws = EngineWorkspace::new();
    for (seed, family) in WorkloadFamily::all().into_iter().enumerate() {
        let trace = TraceSpec::new(family, seed as u64, 3_000).build().unwrap();
        let arena = TraceArena::from_trace(&trace);
        for mech in [Mechanism::Baseline, Mechanism::Iraw, Mechanism::IdealLogic] {
            // Two voltages so the stabilization window N (and with it the
            // Store Table / stall-guard reconfiguration) changes between
            // consecutive resets.
            for vcc in [450u32, 500] {
                let cfg = SimConfig::at_vcc(core, &timing, mv(vcc), mech);
                let batched = ws.run(&cfg, &arena).unwrap();
                let fresh = Simulator::new(cfg).unwrap().run(&trace).unwrap();
                assert_eq!(
                    batched.stats, fresh.stats,
                    "{family:?} / {mech:?} at {vcc} mV"
                );
                assert_eq!(batched.cycle_time, fresh.cycle_time);
            }
        }
    }
}

#[test]
fn fault_map_survives_reset() {
    // The Faulty Bits fault map is applied at construction from a seeded
    // RNG; a reset must re-apply the identical map, not accumulate more
    // disabled lines or drop them.
    let timing = CycleTimeModel::silverthorne_45nm();
    let trace = TraceSpec::new(WorkloadFamily::Server, 11, 3_000)
        .build()
        .unwrap();
    let arena = TraceArena::from_trace(&trace);
    let mut cfg = SimConfig::at_vcc(
        CoreConfig::silverthorne(),
        &timing,
        mv(500),
        Mechanism::Baseline,
    );
    cfg.disabled_lines = (8, 8, 64);
    cfg.fault_seed = 42;
    let mut ws = EngineWorkspace::new();
    let first = ws.run(&cfg, &arena).unwrap();
    let second = ws.run(&cfg, &arena).unwrap();
    let fresh = Simulator::new(cfg).unwrap().run(&trace).unwrap();
    assert_eq!(first.stats, fresh.stats);
    assert_eq!(second.stats, fresh.stats);
}
