//! Fast-path ↔ naive-stepper equivalence suite.
//!
//! The event-driven engine ([`Simulator::run`]) must produce *exactly*
//! the [`SimStats`] of the cycle-by-cycle reference stepper
//! ([`Simulator::run_naive`]) — not approximately: every counter, every
//! stall attribution, every cache statistic. These tests sweep the full
//! mechanism × workload-family matrix over several supply voltages, plus
//! the Extra Bypass / Faulty Bits baseline shapes the engine also serves.
//!
//! With `debug_assertions` enabled (the default test profile, and the
//! release CI job that sets `RUSTFLAGS="-C debug-assertions"`), the fast
//! path additionally replays every skipped stretch against a cloned
//! naive engine internally, so a divergence fails twice over.

use lowvcc_core::{run_suite_with, CoreConfig, Mechanism, Parallelism, SimConfig, Simulator};
use lowvcc_sram::voltage::mv;
use lowvcc_sram::CycleTimeModel;
use lowvcc_trace::{TraceSpec, WorkloadFamily};

fn sim(mechanism: Mechanism, vcc: u32) -> Simulator {
    let cfg = SimConfig::at_vcc(
        CoreConfig::silverthorne(),
        &CycleTimeModel::silverthorne_45nm(),
        mv(vcc),
        mechanism,
    );
    Simulator::new(cfg).expect("preset config is valid")
}

#[test]
fn fast_path_equals_naive_across_mechanisms_families_and_voltages() {
    // 400 mV (N = 2, extreme point), 500 mV (headline band), 575 mV
    // (the paper's attribution point) and 700 mV (IRAW off) cover every
    // distinct stabilization-cycle setting.
    for vcc in [400u32, 500, 575, 700] {
        for mech in [Mechanism::Baseline, Mechanism::Iraw, Mechanism::IdealLogic] {
            let s = sim(mech, vcc);
            for (seed, family) in WorkloadFamily::all().into_iter().enumerate() {
                let trace = TraceSpec::new(family, seed as u64, 4_000)
                    .build()
                    .expect("preset trace params");
                let fast = s.run(&trace).expect("fast path completes");
                let naive = s.run_naive(&trace).expect("naive stepper completes");
                assert_eq!(
                    fast.stats, naive.stats,
                    "stats diverged: {mech:?} {family:?} at {vcc} mV"
                );
                assert_eq!(fast.cycle_time, naive.cycle_time);
            }
        }
    }
}

#[test]
fn fast_path_equals_naive_for_extra_bypass_write_ports() {
    // The Extra Bypass baseline exercises the WritePort blocker, which
    // has its own skip wake-up rule (port frees minus write latency).
    let mut cfg = SimConfig::at_vcc(
        CoreConfig::silverthorne(),
        &CycleTimeModel::silverthorne_45nm(),
        mv(450),
        Mechanism::Baseline,
    );
    cfg.extra_write_port_cycles = 1;
    let s = Simulator::new(cfg).expect("valid config");
    for (seed, family) in WorkloadFamily::all().into_iter().enumerate() {
        let trace = TraceSpec::new(family, 100 + seed as u64, 3_000)
            .build()
            .expect("preset trace params");
        let fast = s.run(&trace).expect("fast path completes");
        let naive = s.run_naive(&trace).expect("naive stepper completes");
        assert_eq!(fast.stats, naive.stats, "extra-bypass {family:?}");
    }
}

#[test]
fn fast_path_equals_naive_with_faulty_lines() {
    // Disabled cache lines change the miss pattern (and thus which
    // cycles are skippable) without touching the skip machinery itself.
    let mut cfg = SimConfig::at_vcc(
        CoreConfig::silverthorne(),
        &CycleTimeModel::silverthorne_45nm(),
        mv(450),
        Mechanism::Baseline,
    );
    cfg.disabled_lines = (16, 16, 256);
    cfg.fault_seed = 11;
    let s = Simulator::new(cfg).expect("valid config");
    let trace = TraceSpec::new(WorkloadFamily::SpecInt, 7, 5_000)
        .build()
        .expect("preset trace params");
    let fast = s.run(&trace).expect("fast path completes");
    let naive = s.run_naive(&trace).expect("naive stepper completes");
    assert_eq!(fast.stats, naive.stats);
}

#[test]
fn parallel_suite_results_are_byte_identical_for_any_worker_count() {
    let traces: Vec<_> = WorkloadFamily::all()
        .into_iter()
        .enumerate()
        .map(|(seed, family)| {
            TraceSpec::new(family, seed as u64, 3_000)
                .build()
                .expect("preset trace params")
        })
        .collect();
    for mech in [Mechanism::Baseline, Mechanism::Iraw] {
        let cfg = SimConfig::at_vcc(
            CoreConfig::silverthorne(),
            &CycleTimeModel::silverthorne_45nm(),
            mv(500),
            mech,
        );
        let sequential =
            run_suite_with(&cfg, &traces, Parallelism::sequential()).expect("suite runs");
        for workers in [2usize, 5, 16] {
            let parallel =
                run_suite_with(&cfg, &traces, Parallelism::threads(workers)).expect("suite runs");
            // Full structural equality: names, order, every statistic.
            assert_eq!(sequential, parallel, "{mech:?} with {workers} workers");
        }
    }
}
