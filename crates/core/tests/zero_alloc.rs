//! Counting-allocator proof of the batch path's allocation-free steady
//! state: once an [`EngineWorkspace`] is warmed up, re-running the whole
//! sweep grid over an already-decoded [`TraceArena`] performs **zero**
//! heap allocations.
//!
//! Debug builds replay every fast-path skip on a *cloned* engine (the
//! shadow equivalence check), which allocates by design, so the
//! assertion only runs in release builds — CI exercises it via
//! `cargo test --release -p lowvcc-core --test zero_alloc`.

// The one sanctioned unsafe block in the tree: a counting GlobalAlloc
// has an inherently unsafe interface. Everything else builds under the
// workspace-wide `unsafe_code = "deny"`.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use lowvcc_core::{CoreConfig, EngineWorkspace, Mechanism, SimConfig};
use lowvcc_sram::voltage::mv;
use lowvcc_sram::CycleTimeModel;
use lowvcc_trace::{TraceArena, TraceSpec, WorkloadFamily};

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Forwards to the system allocator, counting every allocation on the
/// calling thread.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.with(Cell::get)
}

#[test]
fn steady_state_is_allocation_free_after_warmup() {
    if cfg!(debug_assertions) {
        // The debug shadow replay clones the engine per skip by design;
        // only release builds have an allocation-free steady state.
        eprintln!("skipping: debug builds clone the engine for the shadow replay");
        return;
    }
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let trace = TraceSpec::new(WorkloadFamily::SpecInt, 7, 20_000)
        .build()
        .unwrap();
    let arena = TraceArena::from_trace(&trace);
    let cfgs: Vec<SimConfig> = [450u32, 500, 550]
        .iter()
        .flat_map(|&vcc| {
            [Mechanism::Baseline, Mechanism::Iraw, Mechanism::IdealLogic]
                .map(|mech| SimConfig::at_vcc(core, &timing, mv(vcc), mech))
        })
        .collect();
    let mut ws = EngineWorkspace::new();
    // Warm-up pass: builds the engine and grows every internal buffer to
    // its high-water mark for this (grid, trace) pair.
    for cfg in &cfgs {
        ws.run(cfg, &arena).unwrap();
    }
    let before = allocations();
    let mut committed = 0u64;
    for cfg in &cfgs {
        committed += ws.run(cfg, &arena).unwrap().stats.instructions;
    }
    let after = allocations();
    assert_eq!(committed, 20_000 * cfgs.len() as u64);
    assert_eq!(after - before, 0, "warmed-up batch sweep must not allocate");
}
