//! Workload study: how much each of the paper's seven workload classes
//! benefits from IRAW avoidance at 475 mV, and why (stall anatomy).
//!
//! Memory-bound kernels gain the least (constant-time DRAM dilutes the
//! clock gain); cache-resident integer/media code gains the most.
//!
//! Run with: `cargo run --release --example workload_study`

use lowvcc::core::{compare_mechanisms, CoreConfig};
use lowvcc::sram::{CycleTimeModel, Millivolts};
use lowvcc::trace::{TraceSpec, TraceStats, WorkloadFamily};

fn main() -> Result<(), lowvcc::Error> {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let vcc = Millivolts::new(475)?;

    println!(
        "{:<12} {:>8} {:>8} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "family", "speedup", "IPC", "delayed%", "rf-stall%", "dl0%", "code KB", "missrate"
    );
    for family in WorkloadFamily::all() {
        let traces: Vec<_> = (0..3)
            .map(|seed| TraceSpec::new(family, seed, 100_000).build())
            .collect::<Result<_, _>>()?;
        let tstats = TraceStats::analyze(&traces[0]);
        let cmp = compare_mechanisms(core, &timing, vcc, &traces)?;
        let mut rf = 0.0;
        let mut dl0 = 0.0;
        let mut miss = 0.0;
        let n = cmp.iraw.per_trace.len() as f64;
        for (_, r) in &cmp.iraw.per_trace {
            let f = r.stats.stall_fractions();
            rf += f.0 / n;
            dl0 += f.2 / n;
            miss += r.stats.dl0.miss_ratio() / n;
        }
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8.1}% {:>8.2}% {:>7.2}% {:>8.1} {:>8.3}",
            family.name(),
            cmp.speedup.total_time,
            cmp.iraw.aggregate_ipc(),
            cmp.iraw.delayed_instruction_fraction() * 100.0,
            rf * 100.0,
            dl0 * 100.0,
            tstats.code_footprint_bytes() as f64 / 1024.0,
            miss,
        );
    }
    println!(
        "\nFrequency gain available at {vcc}: ×{:.2}",
        timing.frequency_gain(vcc)
    );
    Ok(())
}
