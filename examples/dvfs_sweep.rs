//! DVFS sweep: walk the paper's 700→400 mV range, letting the §4.1.3
//! controller reconfigure the IRAW mechanisms at every step, and print the
//! resulting operating points (frequency, N, predicted speedup and EDP).
//!
//! Run with: `cargo run --release --example dvfs_sweep`

use lowvcc::core::{IrawController, Mechanism};
use lowvcc::energy::{DvfsController, Objective};
use lowvcc::sram::{CycleTimeModel, PAPER_SWEEP};

fn main() {
    let timing = CycleTimeModel::silverthorne_45nm();
    let dvfs = DvfsController::silverthorne_45nm();
    let mechanisms = IrawController::silverthorne(timing);

    println!(
        "{:>7} {:>10} {:>6} {:>13} {:>13} {:>15}",
        "Vcc", "freq", "N", "IQ threshold", "pred speedup", "pred EDP ratio"
    );
    for op in dvfs.schedule(PAPER_SWEEP, Objective::MinEdp) {
        let settings = mechanisms.settings_for(op.vcc);
        let mechanism = if op.iraw_active {
            Mechanism::Iraw
        } else {
            Mechanism::Baseline
        };
        println!(
            "{:>7} {:>10} {:>6} {:>13} {:>13.3} {:>15.3}   {:?}",
            op.vcc.to_string(),
            op.frequency.to_string(),
            settings.n,
            settings.iq_threshold,
            op.predicted_speedup,
            dvfs.predicted_edp_ratio(op.vcc),
            mechanism,
        );
    }
    println!("\nThe controller turns IRAW off at 600 mV and above (paper §4.1.3),");
    println!("and programs N = 1 below — matching the paper's reconfiguration rule.");
}
