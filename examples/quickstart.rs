//! Quickstart: simulate one workload at 500 mV with and without IRAW
//! avoidance, and print the paper's headline comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use lowvcc::core::{CoreConfig, Mechanism, SimConfig, Simulator};
use lowvcc::sram::{CycleTimeModel, Millivolts, TimingLimiter};
use lowvcc::trace::{TraceSpec, WorkloadFamily};

fn main() -> Result<(), lowvcc::Error> {
    // 1. The calibrated 45 nm timing model (the paper's Figure 1 physics).
    let timing = CycleTimeModel::silverthorne_45nm();
    let vcc = Millivolts::new(500)?;
    println!(
        "At {vcc}: logic-limited cycle {:.0} ps, write-limited {:.0} ps, IRAW {:.0} ps",
        timing.cycle_time(vcc, TimingLimiter::Logic).picos(),
        timing.cycle_time(vcc, TimingLimiter::WriteLimited).picos(),
        timing.cycle_time(vcc, TimingLimiter::Iraw).picos(),
    );

    // 2. A synthetic SPEC-integer-like trace (stand-in for the paper's
    //    production traces).
    let trace = TraceSpec::new(WorkloadFamily::SpecInt, 42, 200_000).build()?;
    println!("workload: {} ({} uops)", trace.name, trace.len());

    // 3. Simulate the write-limited baseline and the IRAW core.
    let core = CoreConfig::silverthorne();
    let baseline =
        Simulator::new(SimConfig::at_vcc(core, &timing, vcc, Mechanism::Baseline))?.run(&trace)?;
    let iraw =
        Simulator::new(SimConfig::at_vcc(core, &timing, vcc, Mechanism::Iraw))?.run(&trace)?;

    println!(
        "baseline: {:>8} cycles  IPC {:.3}  {:.2} ms",
        baseline.stats.cycles,
        baseline.stats.ipc(),
        baseline.seconds() * 1e3
    );
    println!(
        "IRAW:     {:>8} cycles  IPC {:.3}  {:.2} ms  ({:.1}% instructions delayed)",
        iraw.stats.cycles,
        iraw.stats.ipc(),
        iraw.seconds() * 1e3,
        iraw.stats.delayed_instruction_fraction() * 100.0
    );
    println!(
        "frequency gain ×{:.2}  →  speedup ×{:.2}   (paper at 500 mV: ×1.57 → ×1.48)",
        timing.frequency_gain(vcc),
        iraw.speedup_over(&baseline)
    );
    Ok(())
}
