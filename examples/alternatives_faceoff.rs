//! Alternatives face-off: IRAW avoidance vs Faulty Bits vs Extra Bypass
//! across the low-Vcc range — the paper's Table 1 argument as a sweep.
//!
//! Run with: `cargo run --release --example alternatives_faceoff`

use lowvcc::baselines::{ExtraBypassDesign, ExtraBypassScope, FaultyBitsDesign, FaultyBitsScope};
use lowvcc::core::{run_suite, CoreConfig, Mechanism, SimConfig};
use lowvcc::sram::{CycleTimeModel, VccRange};
use lowvcc::trace::{TraceSpec, WorkloadFamily};

fn main() -> Result<(), lowvcc::Error> {
    let timing = CycleTimeModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let traces: Vec<_> = [
        (WorkloadFamily::SpecInt, 0u64),
        (WorkloadFamily::Office, 1),
        (WorkloadFamily::Multimedia, 2),
    ]
    .iter()
    .map(|&(f, s)| TraceSpec::new(f, s, 60_000).build())
    .collect::<Result<_, _>>()?;

    let fb = FaultyBitsDesign::four_sigma(FaultyBitsScope::AllBlocksHypothetical);
    let eb = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);

    println!("speedup over the 6σ write-limited baseline (higher is better):");
    println!(
        "{:>7} {:>8} {:>22} {:>24}",
        "Vcc", "IRAW", "FaultyBits 4σ (hypo.)", "ExtraBypass 2-cyc (hypo.)"
    );
    let sweep = VccRange::new(575, 400, 25)?;
    for vcc in sweep.iter() {
        let base = run_suite(
            &SimConfig::at_vcc(core, &timing, vcc, Mechanism::Baseline),
            &traces,
        )?;
        let iraw = run_suite(
            &SimConfig::at_vcc(core, &timing, vcc, Mechanism::Iraw),
            &traces,
        )?;
        let fb_run = run_suite(&fb.sim_config(core, &timing, vcc, 1), &traces)?;
        let eb_run = run_suite(&eb.sim_config(core, &timing, vcc), &traces)?;
        let t0 = base.total_seconds();
        println!(
            "{:>7} {:>8.3} {:>22.3} {:>24.3}",
            vcc.to_string(),
            t0 / iraw.total_seconds(),
            t0 / fb_run.total_seconds(),
            t0 / eb_run.total_seconds(),
        );
    }
    println!("\nCaveat (the paper's Table 1 point): the Faulty Bits and Extra Bypass");
    println!("columns are *hypothetical* — neither technique actually covers all SRAM");
    println!("blocks of the core, so their realistic core-level speedup is 1.0, and");
    println!("they pay fault maps / wide always-on latches respectively.");
    Ok(())
}
