//! Mechanism tour: watch each IRAW-avoidance mechanism act, at the bit
//! level, exactly as the paper's figures describe.
//!
//! Run with: `cargo run --release --example mechanism_tour`

use lowvcc::sram::{CycleTimeModel, Millivolts};
use lowvcc::trace::Reg;
use lowvcc::uarch::iq::InstQueue;
use lowvcc::uarch::scoreboard::{IrawWindow, Scoreboard};
use lowvcc::uarch::stable::{StableMatch, StoreTable, TrackedStore};

fn main() {
    let timing = CycleTimeModel::silverthorne_45nm();
    let vcc = Millivolts::new(500).expect("grid voltage");
    let n = timing.stabilization_cycles(vcc);
    println!("== At {vcc}: N = {n} stabilization cycle(s) ==\n");

    // --- Register file: the Figure 8 ready vector --------------------
    println!("Register file scoreboard (paper Figure 8):");
    let mut sb = Scoreboard::new(7);
    let r = Reg::new(3).expect("valid register");
    sb.set_producer(
        r,
        3,
        Some(IrawWindow {
            bypass_levels: 1,
            bubble: n,
        }),
    );
    for cycle in 0..7 {
        println!(
            "  cycle i+{cycle}: {:07b}  consumer may issue: {}",
            sb.pattern(r),
            if sb.is_ready(r) { "yes" } else { "NO " }
        );
        sb.tick();
    }
    println!("  → ready at i+3 (bypass), blocked at i+4 (RF stabilizing), ready from i+5.\n");

    // --- Instruction queue: the Figure 9 occupancy gate --------------
    println!("Instruction queue gate (paper Figure 9, ICI=2, AI=2):");
    let mut iq: InstQueue<u32> = InstQueue::new(32);
    for occupancy in 1..=5 {
        iq.alloc(occupancy).expect("queue has room");
        println!(
            "  occupancy {occupancy}: issue allowed = {}",
            iq.issue_allowed(2, 2, n)
        );
    }
    println!(
        "  → issue requires occupancy ≥ ICI + AI·N = {}.\n",
        2 + 2 * n as usize
    );

    // --- DL0 Store Table: the Figure 10 flow -------------------------
    println!("DL0 Store Table (paper Figure 10):");
    let mut st = StoreTable::new(2);
    st.reconfigure(n as usize);
    st.cycle_update(Some(TrackedStore {
        addr: 0x1000,
        size: 8,
        set: 4,
    }));
    for (what, addr, set) in [
        ("load of another set      ", 0x2000u64, 9u64),
        ("load of the stored addr  ", 0x1000, 4),
        ("load of same set, diff addr", 0x9000, 4),
    ] {
        let outcome = st.probe(addr, 8, set);
        let verdict = match outcome {
            StableMatch::None => "no conflict — proceeds normally".to_string(),
            StableMatch::Full { replay_stores } => {
                format!("FULL match — STable forwards data, replay {replay_stores} store(s)")
            }
            StableMatch::SetOnly { replay_stores } => {
                format!("SET match — repair: stall + replay {replay_stores} store(s)")
            }
        };
        println!("  {what}: {verdict}");
    }
    println!("\nPrediction-only blocks (BP, RSB) run unprotected — a corrupted");
    println!("counter can only mispredict, never break correctness (paper §4.5).");
}
