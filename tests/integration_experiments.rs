//! End-to-end reproduction checks: every paper artefact regenerated on a
//! small suite, with its qualitative *shape* asserted — crossover
//! voltages, who wins, and rough factors — plus the result-cache
//! contract: strict-JSON round trips, bit-identical warm replays, and
//! corrupt records quarantined then healed by re-simulation.

use std::sync::Arc;

use lowvcc_bench::experiments::{fig1, fig11a, run_all, stalls, sweep, table1};
use lowvcc_bench::{json, ExperimentContext, ResultStore};

fn ctx() -> ExperimentContext {
    ExperimentContext::quick().expect("quick suite builds")
}

#[test]
fn figure1_crossovers_match_paper() {
    let series =
        lowvcc_sram::Figure1Series::generate(&lowvcc_sram::CycleTimeModel::silverthorne_45nm());
    assert_eq!(series.write_wl_crossover().unwrap().millivolts(), 600);
    assert_eq!(series.write_only_crossover().unwrap().millivolts(), 525);
    assert!(series.read_never_limits());
    // Table renders all 13 sweep points.
    assert_eq!(fig1::table(&ctx()).len(), 13);
    assert_eq!(fig11a::table(&ctx()).len(), 13);
}

#[test]
fn figure11b_shape_holds() {
    let points = sweep::run_sweep(&ctx()).expect("sweep runs");
    let at = |mv: u32| sweep::at(&points, mv).expect("grid point");

    // Frequency-gain anchors (±4% of the published +57% / +99%).
    assert!((at(500).frequency_gain - 1.57).abs() < 0.07);
    assert!((at(400).frequency_gain - 1.99).abs() < 0.07);

    // Performance follows frequency but stays below it — and the gap
    // (stalls + constant-time memory) stays bounded.
    for p in &points {
        assert!(p.speedup <= p.frequency_gain + 0.02, "at {}", p.vcc);
        // The quick suite (10k-uop traces) is warmup-dominated, so its
        // speedup/gain ratio sits lower than the standard suite's ≈0.87;
        // 0.72 bounds the cold-start case while still failing if stalls
        // ever explode.
        assert!(
            p.speedup >= p.frequency_gain * 0.72,
            "at {}: speedup {:.3} too far below gain {:.3}",
            p.vcc,
            p.speedup,
            p.frequency_gain
        );
    }

    // No mechanism, no effect: at and above 600 mV everything ties.
    for mv in [600, 625, 650, 675, 700] {
        assert!((at(mv).speedup - 1.0).abs() < 0.01);
        assert_eq!(at(mv).delayed_fraction, 0.0);
    }

    // Below 600 mV a noticeable fraction of instructions is delayed
    // (paper: 13.2%).
    for mv in [575, 500, 450, 400] {
        let d = at(mv).delayed_fraction;
        assert!((0.05..0.25).contains(&d), "delayed {d:.3} at {mv} mV");
    }
}

#[test]
fn figure12_shape_holds() {
    let points = sweep::run_sweep(&ctx()).expect("sweep runs");
    let at = |mv: u32| sweep::at(&points, mv).expect("grid point");

    // High Vcc: IRAW hardware costs ~0.5% energy, delay unchanged → EDP
    // slightly above 1 (paper: "slightly worse at high Vcc").
    let p700 = at(700);
    assert!((p700.relative_delay - 1.0).abs() < 1e-9);
    assert!(p700.relative_energy > 1.0 && p700.relative_energy < 1.02);

    // Low Vcc: decisive EDP wins, monotone in the published direction.
    assert!(at(500).relative_edp < 0.75, "paper 0.61");
    assert!(at(450).relative_edp < at(500).relative_edp, "paper 0.41");
    assert!(at(400).relative_edp < at(450).relative_edp, "paper 0.33");
    assert!(at(400).relative_edp > 0.2, "not implausibly low");

    // Baseline leakage share grows as Vcc falls (the energy mechanism
    // behind the EDP wins).
    for pair in points.windows(2) {
        assert!(pair[1].baseline_leakage_fraction >= pair[0].baseline_leakage_fraction - 1e-9);
    }
}

#[test]
fn table1_story_holds() {
    let t = table1::qualitative();
    assert_eq!(t.len(), 3);
    let quant = table1::quantitative(&ctx()).expect("table runs");
    assert_eq!(quant.len(), 6);
    let rendered = quant.render();
    assert!(rendered.contains("IRAW avoidance"));
    assert!(rendered.contains("hypothetical"));
}

#[test]
fn stall_attribution_rf_dominates() {
    let (_, report) = stalls::table(&ctx()).expect("measurement runs");
    assert!(
        report.total_degradation > 0.01,
        "IRAW stalls must cost something"
    );
    assert!(report.rf_share >= report.dl0_share);
    assert!(report.rf_share >= report.other_share);
}

#[test]
fn full_report_generates_and_writes_csvs() {
    let dir = std::env::temp_dir().join("lowvcc_it_results");
    let _ = std::fs::remove_dir_all(&dir);
    let summary = run_all(&ctx(), &dir).expect("all experiments run");
    for section in [
        "Figure 1",
        "Figure 11a",
        "Figure 11b",
        "Figure 12",
        "Table 1",
        "stall attribution",
        "Scalar results",
    ] {
        assert!(
            summary.report.contains(section),
            "missing section {section}"
        );
    }
    // The machine-readable side carries the sweep and its throughput.
    assert_eq!(summary.sweep.len(), 13);
    assert!(summary.sweep_uops > 0);
    assert!(summary.uops_per_second() > 0.0);
    let json = summary.to_json("it (7×2k)", 14_000, 1);
    assert!(json.contains("\"uops_per_second\""));
    assert!(json.contains("\"vcc_mv\": 500"));
    for csv in [
        "fig1.csv",
        "fig11a.csv",
        "fig11b.csv",
        "fig12.csv",
        "table1_qualitative.csv",
        "table1_quantitative.csv",
        "stalls_575mv.csv",
        "scalars.csv",
    ] {
        assert!(dir.join(csv).exists(), "missing {csv}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every `--json` document must survive the strict parser and carry the
/// full sweep grid with finite numbers (non-finite floats become `null`,
/// never bare `inf`/`NaN` tokens).
#[test]
fn json_documents_round_trip_through_the_strict_parser() {
    let dir = std::env::temp_dir().join(format!("lowvcc_it_json_{}", std::process::id()));
    let ctx = ExperimentContext::sized(1, 2_000).expect("tiny suite builds");
    let summary = run_all(&ctx, &dir).expect("runs");
    let doc = summary.to_json(&ctx.suite_label, ctx.total_uops(), 1);
    let v = json::parse(&doc).expect("strictly valid JSON");
    assert_eq!(
        v.get("suite").unwrap().as_str(),
        Some(ctx.suite_label.as_str())
    );
    let points = v.get("points").unwrap().as_array().unwrap();
    assert_eq!(points.len(), 13);
    let grid: Vec<u64> = points
        .iter()
        .map(|p| p.get("vcc_mv").unwrap().as_u64().unwrap())
        .collect();
    assert_eq!(grid.first(), Some(&700));
    assert_eq!(grid.last(), Some(&400));
    for p in points {
        for field in [
            "frequency_gain",
            "speedup",
            "relative_edp",
            "baseline_leakage_fraction",
        ] {
            let x = p.get(field).unwrap().as_f64().unwrap();
            assert!(x.is_finite(), "{field} must be finite, got {x}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The cache contract end to end: a warm `run_all` replay performs zero
/// simulations yet produces a byte-identical report and bit-identical
/// sweep measurements (`SweepPoint` is all-`f64` — equality here is
/// bit-equality of every derived statistic).
#[test]
fn warm_cached_rerun_is_simulation_free_and_bit_identical() {
    let dir = std::env::temp_dir().join(format!("lowvcc_it_cache_{}", std::process::id()));
    let out = dir.join("out");
    let _ = std::fs::remove_dir_all(&dir);
    let base = ExperimentContext::sized(1, 2_000).expect("tiny suite builds");

    let uncached = run_all(&base.clone(), &out).expect("uncached run");

    let store = Arc::new(ResultStore::open(dir.join("store")).expect("store opens"));
    let cold_ctx = base.clone().with_cache(Arc::clone(&store));
    let cold = run_all(&cold_ctx, &out).expect("cold cached run");
    let cold_misses = store.stats().misses;
    assert!(cold_misses > 0, "cold run must simulate");
    assert_eq!(cold.sweep, uncached.sweep, "cache must not change results");

    assert_eq!(
        cold.sweep_uops, uncached.sweep_uops,
        "a cold cached sweep simulates exactly what an uncached one does"
    );

    let warm = run_all(&cold_ctx, &out).expect("warm cached run");
    assert_eq!(
        store.stats().misses,
        cold_misses,
        "warm run must perform zero simulations"
    );
    assert_eq!(warm.sweep, cold.sweep, "warm sweep bit-identical");
    assert_eq!(warm.report, cold.report, "warm report byte-identical");
    assert_eq!(
        warm.sweep_uops, 0,
        "the throughput numerator counts engine work, not cache hits"
    );

    // A brand-new process (fresh store handle over the same directory)
    // also replays without simulating: persistence, not just the LRU.
    let fresh = Arc::new(ResultStore::open(dir.join("store")).expect("store reopens"));
    let fresh_ctx = base.with_cache(Arc::clone(&fresh));
    let replay = run_all(&fresh_ctx, &out).expect("replay run");
    assert_eq!(fresh.stats().misses, 0, "disk replay simulates nothing");
    assert_eq!(replay.sweep, cold.sweep);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Concurrent experiments sharing one *persistent* store (the
/// `lowvcc-serve` worker-pool shape): identical cold queries racing on
/// every key are deduplicated by the single-flight layer — one engine
/// invocation per key — and every thread's answer is bit-identical to
/// the sequential one.
#[test]
fn concurrent_shared_store_single_flights_and_stays_bit_identical() {
    let dir = std::env::temp_dir().join(format!("lowvcc_it_conc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = ExperimentContext::sized(1, 2_000).expect("tiny suite builds");
    let vcc = lowvcc_sram::Millivolts::new(575).unwrap();
    let sequential = sweep::point(&base, vcc).expect("uncached point");

    let store = Arc::new(ResultStore::open(&dir).expect("store opens"));
    let ctx = base.with_cache(Arc::clone(&store));
    let points: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| s.spawn(|| sweep::point(&ctx, vcc).expect("concurrent point")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let stats = store.stats();
    assert_eq!(
        stats.misses, 14,
        "4 racing cold queries, 2 mechanisms × 7 traces: one simulation per key ({stats:?})"
    );
    assert_eq!(store.disk_entries(), 14);
    for p in &points {
        assert_eq!(
            *p, sequential,
            "cache + concurrency must not change results"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Flipped bytes in store entries self-heal: every corrupt record is
/// quarantined (never read as garbage statistics — the checksum fails
/// closed), the experiment re-simulates and re-publishes, and the
/// answer is bit-identical to the uncorrupted one.
#[test]
fn corrupt_store_entries_quarantine_and_self_heal() {
    let dir = std::env::temp_dir().join(format!("lowvcc_it_corrupt_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let base = ExperimentContext::sized(1, 2_000).expect("tiny suite builds");
    let store = Arc::new(ResultStore::open(&dir).expect("store opens"));
    let ctx = base.with_cache(Arc::clone(&store));
    let vcc = lowvcc_sram::Millivolts::new(575).unwrap();
    let clean = sweep::point(&ctx, vcc).expect("cold point");
    let published = store.disk_entries();
    assert_eq!(published, 14, "2 mechanisms × 7 traces persisted");

    // Flip one byte in every record; no read may ever trust them again.
    let mut flipped = 0;
    for shard in std::fs::read_dir(&dir).unwrap() {
        let shard = shard.unwrap().path();
        if !shard.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(&shard).unwrap() {
            let p = entry.unwrap().path();
            let mut bytes = std::fs::read(&p).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x20;
            std::fs::write(&p, bytes).unwrap();
            flipped += 1;
        }
    }
    assert_eq!(flipped, published, "every record corrupted");

    // A fresh handle (cold LRU) hits the corrupt bytes, quarantines
    // every record, re-simulates, and still answers identically.
    let fresh = Arc::new(ResultStore::open(&dir).expect("store reopens"));
    let base2 = ExperimentContext::sized(1, 2_000).expect("suite rebuilds");
    let ctx2 = base2.with_cache(Arc::clone(&fresh));
    let healed = sweep::point(&ctx2, vcc).expect("degraded reads must not error");
    assert_eq!(healed, clean, "re-simulation is bit-identical");
    let stats = fresh.stats();
    assert_eq!(
        stats.quarantined, flipped,
        "every corrupt record quarantined ({stats:?})"
    );
    assert_eq!(stats.misses, flipped, "every key re-simulated");
    assert_eq!(
        fresh.disk_entries(),
        published,
        "the store healed itself back to full population"
    );
    // And the healed records verify scrub-clean.
    let scrub = fresh.verify().expect("scrub");
    assert_eq!(
        (scrub.scanned, scrub.quarantined),
        (published, 0),
        "healed store is scrub-clean"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
