//! End-to-end reproduction checks: every paper artefact regenerated on a
//! small suite, with its qualitative *shape* asserted — crossover
//! voltages, who wins, and rough factors.

use lowvcc_bench::experiments::{fig1, fig11a, run_all, stalls, sweep, table1};
use lowvcc_bench::ExperimentContext;

fn ctx() -> ExperimentContext {
    ExperimentContext::quick().expect("quick suite builds")
}

#[test]
fn figure1_crossovers_match_paper() {
    let series =
        lowvcc_sram::Figure1Series::generate(&lowvcc_sram::CycleTimeModel::silverthorne_45nm());
    assert_eq!(series.write_wl_crossover().unwrap().millivolts(), 600);
    assert_eq!(series.write_only_crossover().unwrap().millivolts(), 525);
    assert!(series.read_never_limits());
    // Table renders all 13 sweep points.
    assert_eq!(fig1::table(&ctx()).len(), 13);
    assert_eq!(fig11a::table(&ctx()).len(), 13);
}

#[test]
fn figure11b_shape_holds() {
    let points = sweep::run_sweep(&ctx()).expect("sweep runs");
    let at = |mv: u32| sweep::at(&points, mv).expect("grid point");

    // Frequency-gain anchors (±4% of the published +57% / +99%).
    assert!((at(500).frequency_gain - 1.57).abs() < 0.07);
    assert!((at(400).frequency_gain - 1.99).abs() < 0.07);

    // Performance follows frequency but stays below it — and the gap
    // (stalls + constant-time memory) stays bounded.
    for p in &points {
        assert!(p.speedup <= p.frequency_gain + 0.02, "at {}", p.vcc);
        // The quick suite (10k-uop traces) is warmup-dominated, so its
        // speedup/gain ratio sits lower than the standard suite's ≈0.87;
        // 0.72 bounds the cold-start case while still failing if stalls
        // ever explode.
        assert!(
            p.speedup >= p.frequency_gain * 0.72,
            "at {}: speedup {:.3} too far below gain {:.3}",
            p.vcc,
            p.speedup,
            p.frequency_gain
        );
    }

    // No mechanism, no effect: at and above 600 mV everything ties.
    for mv in [600, 625, 650, 675, 700] {
        assert!((at(mv).speedup - 1.0).abs() < 0.01);
        assert_eq!(at(mv).delayed_fraction, 0.0);
    }

    // Below 600 mV a noticeable fraction of instructions is delayed
    // (paper: 13.2%).
    for mv in [575, 500, 450, 400] {
        let d = at(mv).delayed_fraction;
        assert!((0.05..0.25).contains(&d), "delayed {d:.3} at {mv} mV");
    }
}

#[test]
fn figure12_shape_holds() {
    let points = sweep::run_sweep(&ctx()).expect("sweep runs");
    let at = |mv: u32| sweep::at(&points, mv).expect("grid point");

    // High Vcc: IRAW hardware costs ~0.5% energy, delay unchanged → EDP
    // slightly above 1 (paper: "slightly worse at high Vcc").
    let p700 = at(700);
    assert!((p700.relative_delay - 1.0).abs() < 1e-9);
    assert!(p700.relative_energy > 1.0 && p700.relative_energy < 1.02);

    // Low Vcc: decisive EDP wins, monotone in the published direction.
    assert!(at(500).relative_edp < 0.75, "paper 0.61");
    assert!(at(450).relative_edp < at(500).relative_edp, "paper 0.41");
    assert!(at(400).relative_edp < at(450).relative_edp, "paper 0.33");
    assert!(at(400).relative_edp > 0.2, "not implausibly low");

    // Baseline leakage share grows as Vcc falls (the energy mechanism
    // behind the EDP wins).
    for pair in points.windows(2) {
        assert!(pair[1].baseline_leakage_fraction >= pair[0].baseline_leakage_fraction - 1e-9);
    }
}

#[test]
fn table1_story_holds() {
    let t = table1::qualitative();
    assert_eq!(t.len(), 3);
    let quant = table1::quantitative(&ctx()).expect("table runs");
    assert_eq!(quant.len(), 6);
    let rendered = quant.render();
    assert!(rendered.contains("IRAW avoidance"));
    assert!(rendered.contains("hypothetical"));
}

#[test]
fn stall_attribution_rf_dominates() {
    let (_, report) = stalls::table(&ctx()).expect("measurement runs");
    assert!(
        report.total_degradation > 0.01,
        "IRAW stalls must cost something"
    );
    assert!(report.rf_share >= report.dl0_share);
    assert!(report.rf_share >= report.other_share);
}

#[test]
fn full_report_generates_and_writes_csvs() {
    let dir = std::env::temp_dir().join("lowvcc_it_results");
    let _ = std::fs::remove_dir_all(&dir);
    let summary = run_all(&ctx(), &dir).expect("all experiments run");
    for section in [
        "Figure 1",
        "Figure 11a",
        "Figure 11b",
        "Figure 12",
        "Table 1",
        "stall attribution",
        "Scalar results",
    ] {
        assert!(
            summary.report.contains(section),
            "missing section {section}"
        );
    }
    // The machine-readable side carries the sweep and its throughput.
    assert_eq!(summary.sweep.len(), 13);
    assert!(summary.sweep_uops > 0);
    assert!(summary.uops_per_second() > 0.0);
    let json = summary.to_json("it (7×2k)", 14_000, 1);
    assert!(json.contains("\"uops_per_second\""));
    assert!(json.contains("\"vcc_mv\": 500"));
    for csv in [
        "fig1.csv",
        "fig11a.csv",
        "fig11b.csv",
        "fig12.csv",
        "table1_qualitative.csv",
        "table1_quantitative.csv",
        "stalls_575mv.csv",
        "scalars.csv",
    ] {
        assert!(dir.join(csv).exists(), "missing {csv}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
