//! Property-based tests over the core data structures and models.

use proptest::prelude::*;

use lowvcc_sram::voltage::mv;
use lowvcc_sram::{Bitcell8T, CycleTimeModel, TimingLimiter};
use lowvcc_trace::{Reg, SimRng, TraceSpec, WorkloadFamily};
use lowvcc_uarch::cache::{CacheConfig, SetAssocCache};
use lowvcc_uarch::iq::InstQueue;
use lowvcc_uarch::replacement::Policy;
use lowvcc_uarch::scoreboard::{IrawWindow, Scoreboard};
use lowvcc_uarch::stable::{StableMatch, StoreTable, TrackedStore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Scoreboard semantics: for any producer latency and IRAW window that
    /// fit the register, readiness over time is exactly
    /// `not-ready(lat) ; ready(bypass) ; not-ready(bubble) ; ready(∞)`.
    #[test]
    fn scoreboard_window_semantics(
        latency in 1u32..5,
        bypass in 1u32..3,
        bubble in 0u32..3,
        width in 8u32..16,
    ) {
        // A B-bit register supports windows up to B − 1 bits (the pattern
        // needs a trailing ready bit).
        prop_assume!(latency + bypass + bubble < width);
        let mut sb = Scoreboard::new(width);
        let r = Reg::new(7).unwrap();
        sb.set_producer(r, latency, Some(IrawWindow { bypass_levels: bypass, bubble }));
        let horizon = width + 4;
        for cycle in 0..horizon {
            let expect = if cycle < latency {
                false
            } else if cycle < latency + bypass {
                true
            } else if cycle < latency + bypass + bubble {
                false
            } else {
                true
            };
            prop_assert_eq!(sb.is_ready(r), expect, "cycle {}", cycle);
            sb.tick();
        }
    }

    /// Once ready-forever, a register stays ready under arbitrary ticks
    /// (the trailing ones are sticky).
    #[test]
    fn scoreboard_ready_is_sticky(latency in 1u32..6, extra_ticks in 0u32..40) {
        let mut sb = Scoreboard::new(8);
        let r = Reg::new(1).unwrap();
        sb.set_producer(r, latency, None);
        for _ in 0..latency {
            sb.tick();
        }
        prop_assert!(sb.is_ready(r));
        for _ in 0..extra_ticks {
            sb.tick();
            prop_assert!(sb.is_ready(r));
        }
    }

    /// The IQ behaves exactly like a FIFO, and the Figure 9 hardware
    /// occupancy always agrees with the architectural count.
    #[test]
    fn iq_matches_reference_fifo(ops in prop::collection::vec(0u8..3, 1..200)) {
        let mut iq: InstQueue<u32> = InstQueue::new(16);
        let mut reference = std::collections::VecDeque::new();
        let mut next = 0u32;
        for op in ops {
            match op {
                0 => {
                    let ok = iq.alloc(next).is_ok();
                    if reference.len() < 16 {
                        prop_assert!(ok);
                        reference.push_back(next);
                    } else {
                        prop_assert!(!ok);
                    }
                    next += 1;
                }
                1 => {
                    prop_assert_eq!(iq.pop_oldest(), reference.pop_front());
                }
                _ => {
                    iq.flush();
                    reference.clear();
                }
            }
            prop_assert_eq!(iq.occupancy(), reference.len());
            prop_assert_eq!(iq.hardware_occupancy(), reference.len());
            prop_assert_eq!(iq.front(), reference.front());
        }
    }

    /// Cache coherence of the tag store: after a fill, the line hits until
    /// it is evicted or invalidated; misses never lie.
    #[test]
    fn cache_tag_store_is_truthful(lines in prop::collection::vec(0u64..64, 1..300)) {
        let mut cache = SetAssocCache::new(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            policy: Policy::Lru,
        }).unwrap();
        let mut resident = std::collections::HashSet::new();
        for line in lines {
            let hit = cache.access(line);
            prop_assert_eq!(hit, resident.contains(&line), "line {}", line);
            if !hit {
                if let Ok(evicted) = cache.fill(line) {
                    if let Some(v) = evicted {
                        resident.remove(&v);
                    }
                    resident.insert(line);
                }
            }
        }
    }

    /// Store Table: a probe returns Full iff some enabled tracked store
    /// overlaps the probed range; SetOnly iff only a set matches.
    #[test]
    fn stable_matches_reference_model(
        stores in prop::collection::vec((0u64..32, prop::bool::ANY), 1..40),
        probe_word in 0u64..32,
    ) {
        let mut st = StoreTable::new(2);
        let mut window: std::collections::VecDeque<Option<(u64, u64)>> =
            std::collections::VecDeque::new(); // (addr, set)
        for (word, present) in stores {
            let addr = word * 8;
            let set = word % 4;
            let tracked = present.then_some(TrackedStore { addr, size: 8, set });
            st.cycle_update(tracked);
            window.push_back(present.then_some((addr, set)));
            if window.len() > 2 {
                window.pop_front();
            }
        }
        let addr = probe_word * 8;
        let set = probe_word % 4;
        let live: Vec<(u64, u64)> = window.iter().flatten().copied().collect();
        let expect_full = live.iter().any(|&(a, _)| a == addr);
        let expect_set = live.iter().any(|&(_, s)| s == set);
        match st.probe(addr, 8, set) {
            StableMatch::Full { .. } => prop_assert!(expect_full),
            StableMatch::SetOnly { .. } => prop_assert!(!expect_full && expect_set),
            StableMatch::None => prop_assert!(!expect_full && !expect_set),
        }
    }

    /// Timing-model monotonicity: for any two voltages, the lower one has
    /// longer delays under every limiter, and IRAW sits between logic and
    /// write-limited.
    #[test]
    fn cycle_times_monotone_and_ordered(a in 400u32..700, b in 400u32..700) {
        let m = CycleTimeModel::silverthorne_45nm();
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assume!(lo != hi);
        for limiter in [TimingLimiter::Logic, TimingLimiter::WriteLimited, TimingLimiter::Iraw] {
            prop_assert!(m.cycle_time(mv(lo), limiter) > m.cycle_time(mv(hi), limiter));
        }
        for v in [lo, hi] {
            let logic = m.cycle_time(mv(v), TimingLimiter::Logic);
            let iraw = m.cycle_time(mv(v), TimingLimiter::Iraw);
            let base = m.cycle_time(mv(v), TimingLimiter::WriteLimited);
            prop_assert!(logic <= iraw);
            prop_assert!(iraw <= base);
        }
    }

    /// Bitcell σ-sensitivity: write delay increases with σ at any voltage.
    #[test]
    fn write_delay_monotone_in_sigma(v in 400u32..700, s1 in 0f64..6.0, s2 in 0f64..6.0) {
        prop_assume!((s1 - s2).abs() > 0.05);
        let cell = Bitcell8T::silverthorne_45nm();
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(
            cell.write_delay_at_sigma(mv(v), lo) < cell.write_delay_at_sigma(mv(v), hi)
        );
    }

    /// PRNG bounds: `below(n)` always lands in range and `chance`
    /// respects the clamped extremes.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
        prop_assert!(!rng.chance(0.0));
        prop_assert!(rng.chance(1.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whole-stack property: any seeded workload simulates to completion
    /// under every mechanism, committing exactly its uop count, with IPC
    /// within the machine's physical bounds.
    #[test]
    fn any_workload_simulates_cleanly(
        seed in 0u64..5000,
        family_idx in 0usize..7,
        len in 1_000usize..4_000,
    ) {
        use lowvcc_core::{CoreConfig, Mechanism, SimConfig, Simulator};
        let family = WorkloadFamily::all()[family_idx];
        let trace = TraceSpec::new(family, seed, len).build().unwrap();
        let timing = CycleTimeModel::silverthorne_45nm();
        for mech in [Mechanism::Baseline, Mechanism::Iraw] {
            let cfg = SimConfig::at_vcc(CoreConfig::silverthorne(), &timing, mv(475), mech);
            let result = Simulator::new(cfg).unwrap().run(&trace).unwrap();
            prop_assert_eq!(result.stats.instructions, len as u64);
            prop_assert!(result.stats.ipc() <= 2.0);
            prop_assert!(result.stats.cycles >= (len as u64) / 2);
        }
    }
}
