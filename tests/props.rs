//! Property-based tests over the core data structures and models.
//!
//! The properties are checked over many pseudo-random cases drawn from the
//! workspace's own deterministic [`SimRng`] (the container image has no
//! crates.io access, so `proptest` is substituted with a seeded case loop —
//! same properties, reproducible failures).

use lowvcc_sram::voltage::mv;
use lowvcc_sram::{Bitcell8T, CycleTimeModel, TimingLimiter};
use lowvcc_trace::{Reg, SimRng, TraceSpec, WorkloadFamily};
use lowvcc_uarch::cache::{CacheConfig, SetAssocCache};
use lowvcc_uarch::iq::InstQueue;
use lowvcc_uarch::replacement::Policy;
use lowvcc_uarch::scoreboard::{IrawWindow, Scoreboard};
use lowvcc_uarch::stable::{StableMatch, StoreTable, TrackedStore};

const CASES: u64 = 128;

/// One RNG per property, seeded by the property's name, so cases are
/// independent across properties but stable across runs.
fn case_rng(property: &str) -> SimRng {
    let seed = property.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    SimRng::seed_from(seed)
}

/// Draws from an inclusive-exclusive range.
fn draw(rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    lo + rng.below(hi - lo)
}

/// Scoreboard semantics: for any producer latency and IRAW window that
/// fit the register, readiness over time is exactly
/// `not-ready(lat) ; ready(bypass) ; not-ready(bubble) ; ready(∞)`.
#[test]
fn scoreboard_window_semantics() {
    let mut rng = case_rng("scoreboard_window_semantics");
    let mut checked = 0;
    while checked < CASES {
        let latency = draw(&mut rng, 1, 5) as u32;
        let bypass = draw(&mut rng, 1, 3) as u32;
        let bubble = draw(&mut rng, 0, 3) as u32;
        let width = draw(&mut rng, 8, 16) as u32;
        // A B-bit register supports windows up to B − 1 bits (the pattern
        // needs a trailing ready bit).
        if latency + bypass + bubble >= width {
            continue;
        }
        checked += 1;
        let mut sb = Scoreboard::new(width);
        let r = Reg::new(7).unwrap();
        sb.set_producer(
            r,
            latency,
            Some(IrawWindow {
                bypass_levels: bypass,
                bubble,
            }),
        );
        let horizon = width + 4;
        for cycle in 0..horizon {
            let expect = if cycle < latency {
                false
            } else if cycle < latency + bypass {
                true
            } else {
                cycle >= latency + bypass + bubble
            };
            assert_eq!(
                sb.is_ready(r),
                expect,
                "lat {latency} bypass {bypass} bubble {bubble} width {width} cycle {cycle}"
            );
            sb.tick();
        }
    }
}

/// Once ready-forever, a register stays ready under arbitrary ticks
/// (the trailing ones are sticky).
#[test]
fn scoreboard_ready_is_sticky() {
    let mut rng = case_rng("scoreboard_ready_is_sticky");
    for _ in 0..CASES {
        let latency = draw(&mut rng, 1, 6) as u32;
        let extra_ticks = draw(&mut rng, 0, 40);
        let mut sb = Scoreboard::new(8);
        let r = Reg::new(1).unwrap();
        sb.set_producer(r, latency, None);
        for _ in 0..latency {
            sb.tick();
        }
        assert!(sb.is_ready(r), "latency {latency}");
        for _ in 0..extra_ticks {
            sb.tick();
            assert!(sb.is_ready(r), "latency {latency}");
        }
    }
}

/// The IQ behaves exactly like a FIFO, and the Figure 9 hardware
/// occupancy always agrees with the architectural count.
#[test]
fn iq_matches_reference_fifo() {
    let mut rng = case_rng("iq_matches_reference_fifo");
    for case in 0..CASES {
        let ops = draw(&mut rng, 1, 200);
        let mut iq: InstQueue<u32> = InstQueue::new(16);
        let mut reference = std::collections::VecDeque::new();
        let mut next = 0u32;
        for _ in 0..ops {
            match rng.below(3) {
                0 => {
                    let ok = iq.alloc(next).is_ok();
                    if reference.len() < 16 {
                        assert!(ok, "case {case}");
                        reference.push_back(next);
                    } else {
                        assert!(!ok, "case {case}");
                    }
                    next += 1;
                }
                1 => {
                    assert_eq!(iq.pop_oldest(), reference.pop_front(), "case {case}");
                }
                _ => {
                    iq.flush();
                    reference.clear();
                }
            }
            assert_eq!(iq.occupancy(), reference.len(), "case {case}");
            assert_eq!(iq.hardware_occupancy(), reference.len(), "case {case}");
            assert_eq!(iq.front(), reference.front(), "case {case}");
        }
    }
}

/// Cache coherence of the tag store: after a fill, the line hits until
/// it is evicted or invalidated; misses never lie.
#[test]
fn cache_tag_store_is_truthful() {
    let mut rng = case_rng("cache_tag_store_is_truthful");
    for _ in 0..CASES {
        let accesses = draw(&mut rng, 1, 300);
        let mut cache = SetAssocCache::new(CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            policy: Policy::Lru,
        })
        .unwrap();
        let mut resident = std::collections::HashSet::new();
        for _ in 0..accesses {
            let line = rng.below(64);
            let hit = cache.access(line);
            assert_eq!(hit, resident.contains(&line), "line {line}");
            if !hit {
                if let Ok(evicted) = cache.fill(line) {
                    if let Some(v) = evicted {
                        resident.remove(&v);
                    }
                    resident.insert(line);
                }
            }
        }
    }
}

/// Store Table: a probe returns Full iff some enabled tracked store
/// overlaps the probed range; SetOnly iff only a set matches.
#[test]
fn stable_matches_reference_model() {
    let mut rng = case_rng("stable_matches_reference_model");
    for _ in 0..CASES {
        let stores = draw(&mut rng, 1, 40);
        let probe_word = rng.below(32);
        let mut st = StoreTable::new(2);
        let mut window: std::collections::VecDeque<Option<(u64, u64)>> =
            std::collections::VecDeque::new(); // (addr, set)
        for _ in 0..stores {
            let word = rng.below(32);
            let present = rng.chance(0.5);
            let addr = word * 8;
            let set = word % 4;
            let tracked = present.then_some(TrackedStore { addr, size: 8, set });
            st.cycle_update(tracked);
            window.push_back(present.then_some((addr, set)));
            if window.len() > 2 {
                window.pop_front();
            }
        }
        let addr = probe_word * 8;
        let set = probe_word % 4;
        let live: Vec<(u64, u64)> = window.iter().flatten().copied().collect();
        let expect_full = live.iter().any(|&(a, _)| a == addr);
        let expect_set = live.iter().any(|&(_, s)| s == set);
        match st.probe(addr, 8, set) {
            StableMatch::Full { .. } => assert!(expect_full),
            StableMatch::SetOnly { .. } => assert!(!expect_full && expect_set),
            StableMatch::None => assert!(!expect_full && !expect_set),
        }
    }
}

/// Timing-model monotonicity: for any two voltages, the lower one has
/// longer delays under every limiter, and IRAW sits between logic and
/// write-limited.
#[test]
fn cycle_times_monotone_and_ordered() {
    let mut rng = case_rng("cycle_times_monotone_and_ordered");
    let m = CycleTimeModel::silverthorne_45nm();
    let mut checked = 0;
    while checked < CASES {
        let a = draw(&mut rng, 400, 700) as u32;
        let b = draw(&mut rng, 400, 700) as u32;
        let (lo, hi) = (a.min(b), a.max(b));
        if lo == hi {
            continue;
        }
        checked += 1;
        for limiter in [
            TimingLimiter::Logic,
            TimingLimiter::WriteLimited,
            TimingLimiter::Iraw,
        ] {
            assert!(
                m.cycle_time(mv(lo), limiter) > m.cycle_time(mv(hi), limiter),
                "{lo} vs {hi} under {limiter:?}"
            );
        }
        for v in [lo, hi] {
            let logic = m.cycle_time(mv(v), TimingLimiter::Logic);
            let iraw = m.cycle_time(mv(v), TimingLimiter::Iraw);
            let base = m.cycle_time(mv(v), TimingLimiter::WriteLimited);
            assert!(logic <= iraw, "at {v} mV");
            assert!(iraw <= base, "at {v} mV");
        }
    }
}

/// Bitcell σ-sensitivity: write delay increases with σ at any voltage.
#[test]
fn write_delay_monotone_in_sigma() {
    let mut rng = case_rng("write_delay_monotone_in_sigma");
    let cell = Bitcell8T::silverthorne_45nm();
    let mut checked = 0;
    while checked < CASES {
        let v = draw(&mut rng, 400, 700) as u32;
        let s1 = rng.next_f64() * 6.0;
        let s2 = rng.next_f64() * 6.0;
        if (s1 - s2).abs() <= 0.05 {
            continue;
        }
        checked += 1;
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        assert!(
            cell.write_delay_at_sigma(mv(v), lo) < cell.write_delay_at_sigma(mv(v), hi),
            "{v} mV, sigma {lo:.2} vs {hi:.2}"
        );
    }
}

/// PRNG bounds: `below(n)` always lands in range and `chance` respects
/// the clamped extremes.
#[test]
fn rng_bounds() {
    let mut meta = case_rng("rng_bounds");
    for _ in 0..CASES {
        let seed = meta.below(u64::MAX);
        let bound = draw(&mut meta, 1, 1_000_000);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..32 {
            assert!(rng.below(bound) < bound, "seed {seed} bound {bound}");
        }
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}

/// Whole-stack property: any seeded workload simulates to completion
/// under every mechanism, committing exactly its uop count, with IPC
/// within the machine's physical bounds.
#[test]
fn any_workload_simulates_cleanly() {
    use lowvcc_core::{CoreConfig, Mechanism, SimConfig, Simulator};
    let mut rng = case_rng("any_workload_simulates_cleanly");
    let timing = CycleTimeModel::silverthorne_45nm();
    for _ in 0..12 {
        let seed = rng.below(5000);
        let family = WorkloadFamily::all()[rng.below(7) as usize];
        let len = draw(&mut rng, 1_000, 4_000) as usize;
        let trace = TraceSpec::new(family, seed, len).build().unwrap();
        for mech in [Mechanism::Baseline, Mechanism::Iraw] {
            let cfg = SimConfig::at_vcc(CoreConfig::silverthorne(), &timing, mv(475), mech);
            let result = Simulator::new(cfg).unwrap().run(&trace).unwrap();
            assert_eq!(
                result.stats.instructions, len as u64,
                "{family} seed {seed}"
            );
            assert!(result.stats.ipc() <= 2.0, "{family} seed {seed}");
            assert!(
                result.stats.cycles >= (len as u64) / 2,
                "{family} seed {seed}"
            );
        }
    }
}
