//! Cross-crate pipeline integration: mechanism orderings, determinism,
//! adaptation and baseline designs on real synthetic workloads.

use lowvcc_baselines::{ExtraBypassDesign, ExtraBypassScope, FaultyBitsDesign, FaultyBitsScope};
use lowvcc_core::{
    adapt_at, compare_mechanisms, run_suite, AdaptGoal, CoreConfig, Mechanism, SimConfig, Simulator,
};
use lowvcc_energy::EnergyModel;
use lowvcc_sram::voltage::mv;
use lowvcc_sram::CycleTimeModel;
use lowvcc_trace::{Trace, TraceSpec, WorkloadFamily};

fn timing() -> CycleTimeModel {
    CycleTimeModel::silverthorne_45nm()
}

fn traces(len: usize) -> Vec<Trace> {
    [
        (WorkloadFamily::SpecInt, 3u64),
        (WorkloadFamily::Office, 4),
        (WorkloadFamily::Kernel, 5),
    ]
    .iter()
    .map(|&(f, s)| TraceSpec::new(f, s, len).build().unwrap())
    .collect()
}

#[test]
fn mechanism_time_ordering_at_every_low_voltage() {
    let core = CoreConfig::silverthorne();
    let ts = traces(15_000);
    for v in [575, 525, 475, 425] {
        let base = run_suite(
            &SimConfig::at_vcc(core, &timing(), mv(v), Mechanism::Baseline),
            &ts,
        )
        .unwrap();
        let iraw = run_suite(
            &SimConfig::at_vcc(core, &timing(), mv(v), Mechanism::Iraw),
            &ts,
        )
        .unwrap();
        let ideal = run_suite(
            &SimConfig::at_vcc(core, &timing(), mv(v), Mechanism::IdealLogic),
            &ts,
        )
        .unwrap();
        // Wall-clock: ideal ≤ IRAW < baseline. The ideal clock may lose up
        // to ~1% to ceil() quantization of the constant-time DRAM latency
        // (a faster clock rounds the same nanoseconds up to more cycles).
        assert!(
            ideal.total_seconds() <= iraw.total_seconds() * 1.01,
            "{v} mV"
        );
        assert!(iraw.total_seconds() < base.total_seconds(), "{v} mV");
        // IRAW pays stall cycles against a stall-free run at the *same*
        // clock (the clean comparison; the ideal clock differs in memory
        // cycle counts). Measured via the stall counters directly:
        let iraw_stalls: u64 = iraw
            .per_trace
            .iter()
            .map(|(_, r)| r.stats.stalls.rf_iraw + r.stats.stalls.iq_iraw)
            .sum();
        assert!(iraw_stalls > 0, "{v} mV: IRAW must pay some stalls");
        // Baseline never stalls for IRAW.
        for (_, r) in &base.per_trace {
            assert_eq!(r.stats.stalls.rf_iraw, 0);
            assert_eq!(r.stats.stalls.iq_iraw, 0);
            assert_eq!(r.stats.stable.probes, 0);
        }
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let core = CoreConfig::silverthorne();
    let cfg = SimConfig::at_vcc(core, &timing(), mv(450), Mechanism::Iraw);
    let sim = Simulator::new(cfg).unwrap();
    let t = TraceSpec::new(WorkloadFamily::Server, 11, 30_000)
        .build()
        .unwrap();
    let a = sim.run(&t).unwrap();
    let b = sim.run(&t).unwrap();
    assert_eq!(a.stats, b.stats);
    // Rebuilding the trace from the same spec gives the same stream.
    let t2 = TraceSpec::new(WorkloadFamily::Server, 11, 30_000)
        .build()
        .unwrap();
    assert_eq!(t.uops, t2.uops);
}

#[test]
fn measured_adaptation_matches_predictive_controller() {
    // The energy crate's predictive DVFS controller and the measured
    // adaptation must agree on the on/off boundary (600 mV).
    let energy = EnergyModel::silverthorne_45nm();
    let core = CoreConfig::silverthorne();
    let ts = traces(10_000);
    let low = adapt_at(core, &timing(), &energy, mv(500), &ts, AdaptGoal::MinEdp).unwrap();
    assert_eq!(low.chosen, Mechanism::Iraw);
    assert!(low.iraw_edp_ratio < 0.85);
    let high = adapt_at(
        core,
        &timing(),
        &energy,
        mv(625),
        &ts,
        AdaptGoal::Performance,
    )
    .unwrap();
    assert!(
        (high.iraw_speedup - 1.0).abs() < 0.01,
        "tie above the boundary"
    );
}

#[test]
fn faulty_bits_all_blocks_pays_with_misses() {
    let core = CoreConfig::silverthorne();
    let ts = traces(15_000);
    let v = mv(425);
    let design = FaultyBitsDesign::four_sigma(FaultyBitsScope::AllBlocksHypothetical);
    let faulty = run_suite(&design.sim_config(core, &timing(), v, 9), &ts).unwrap();
    let base = run_suite(
        &SimConfig::at_vcc(core, &timing(), v, Mechanism::Baseline),
        &ts,
    )
    .unwrap();
    // Faster clock wins time…
    assert!(faulty.total_seconds() < base.total_seconds());
    // …but the disabled lines cost IPC.
    assert!(faulty.aggregate_ipc() <= base.aggregate_ipc() + 1e-9);
}

#[test]
fn extra_bypass_contention_shows_up_in_stats() {
    let core = CoreConfig::silverthorne();
    let ts = traces(15_000);
    let design = ExtraBypassDesign::two_cycle(ExtraBypassScope::AllBlocksHypothetical);
    let cfg = design.sim_config(core, &timing(), mv(475));
    let suite = run_suite(&cfg, &ts).unwrap();
    let port_stalls: u64 = suite
        .per_trace
        .iter()
        .map(|(_, r)| r.stats.write_port_stalls)
        .sum();
    assert!(port_stalls > 0, "two-cycle writes must contend for ports");
}

#[test]
fn iraw_comparison_carries_block_level_evidence() {
    let core = CoreConfig::silverthorne();
    let cmp = compare_mechanisms(core, &timing(), mv(475), &traces(20_000)).unwrap();
    let mut full_matches = 0;
    let mut bp_reads = 0;
    for (_, r) in &cmp.iraw.per_trace {
        full_matches += r.stats.stable.full_matches;
        bp_reads += r.stats.branches.branches;
        // Every run commits its full trace.
        assert_eq!(r.stats.instructions, 20_000);
    }
    assert!(full_matches > 0, "stack spills must hit the Store Table");
    assert!(bp_reads > 1000, "branches flow through the predictor");
}

#[test]
fn iraw_aware_scheduling_reduces_rf_stalls() {
    // The paper's §5.2 future-work claim, demonstrated: reordering the
    // trace to widen producer→consumer distances removes register-file
    // IRAW stalls without changing semantics.
    use lowvcc_trace::{schedule_trace, verify_reorder, ScheduleConfig};
    let core = CoreConfig::silverthorne();
    let cfg = SimConfig::at_vcc(core, &timing(), mv(475), Mechanism::Iraw);
    let sim = Simulator::new(cfg).unwrap();

    let original = TraceSpec::new(WorkloadFamily::SpecInt, 33, 40_000)
        .build()
        .unwrap();
    let (scheduled, stats) = schedule_trace(&original, ScheduleConfig::silverthorne_iraw());
    verify_reorder(&original, &scheduled).unwrap();
    assert!(
        stats.hoisted > 0,
        "scheduler must find hoisting opportunities"
    );

    let before = sim.run(&original).unwrap();
    let after = sim.run(&scheduled).unwrap();
    assert_eq!(after.stats.instructions, before.stats.instructions);
    assert!(
        after.stats.stalls.rf_iraw < before.stats.stalls.rf_iraw,
        "RF IRAW stalls: {} → {}",
        before.stats.stalls.rf_iraw,
        after.stats.stalls.rf_iraw
    );
    assert!(
        after.stats.iraw_delayed_instructions < before.stats.iraw_delayed_instructions,
        "delayed instructions must drop"
    );
}
