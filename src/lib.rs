//! # lowvcc — High-Performance Low-Vcc In-Order Core (HPCA 2010) reproduction
//!
//! Facade crate re-exporting the whole workspace. See the README for the
//! architecture overview and `DESIGN.md` for the paper-to-module map.

pub mod error;

pub use error::Error;

pub use lowvcc_baselines as baselines;
pub use lowvcc_core as core;
pub use lowvcc_energy as energy;
pub use lowvcc_sram as sram;
pub use lowvcc_trace as trace;
pub use lowvcc_uarch as uarch;
