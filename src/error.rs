//! Workspace-level error facade.
//!
//! Each crate of the stack exposes its own typed error at its boundary
//! (`VoltageError`, `TraceError`, `ConfigError`, `SimError`,
//! `ExperimentError`); [`Error`] unifies the ones reachable through the
//! facade re-exports so applications — the `examples/` binaries included —
//! can use one `?`-friendly type end-to-end.

use std::fmt;

use lowvcc_core::{ConfigError, SimError};
use lowvcc_sram::VoltageError;
use lowvcc_trace::TraceError;

/// Any error produced by the re-exported workspace crates.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A supply-voltage value was rejected (`lowvcc_sram`).
    Voltage(VoltageError),
    /// Workload synthesis or validation failed (`lowvcc_trace`).
    Trace(TraceError),
    /// A machine configuration failed validation (`lowvcc_core`).
    Config(ConfigError),
    /// A simulation failed (`lowvcc_core`).
    Sim(SimError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Voltage(e) => write!(f, "voltage: {e}"),
            Self::Trace(e) => write!(f, "trace: {e}"),
            Self::Config(e) => write!(f, "config: {e}"),
            Self::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Voltage(e) => Some(e),
            Self::Trace(e) => Some(e),
            Self::Config(e) => Some(e),
            Self::Sim(e) => Some(e),
        }
    }
}

impl From<VoltageError> for Error {
    fn from(e: VoltageError) -> Self {
        Self::Voltage(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Self::Trace(e)
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Self::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_every_layer() {
        let e: Error = SimError::NoProgress {
            cycles: 1,
            committed: 0,
            total: 1,
        }
        .into();
        assert!(matches!(e, Error::Sim(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("simulation:"));

        let e: Error = ConfigError::ZeroWidth.into();
        assert!(matches!(e, Error::Config(_)));

        let e: Error = TraceError::Empty { name: "x" }.into();
        assert!(matches!(e, Error::Trace(_)));
    }
}
