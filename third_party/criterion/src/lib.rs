//! Minimal, dependency-free stand-in for the [`criterion`] benchmark
//! harness API, so the workspace's benches compile and run in offline
//! environments (the CI image has no crates.io access).
//!
//! Only the surface the `lowvcc-bench` benches use is provided:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] (with `sample_size`/`throughput`/`finish`),
//! [`Throughput`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Timing model: each benchmark closure is warmed once, then timed over a
//! small fixed number of batches and reported as mean ns/iter on stdout.
//! The iteration budget is intentionally tiny (`CRITERION_SHIM_ITERS`
//! overrides it) so `cargo test`/`cargo bench` stay fast; this shim trades
//! statistical rigor for hermetic builds.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::Instant;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn shim_iters() -> u64 {
    std::env::var("CRITERION_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

/// Declared throughput of a benchmark, echoed in the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Drives one benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Times `f`, retaining the mean ns/iter for the report.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = shim_iters();
        black_box(f()); // warm-up
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(group: Option<&str>, name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let extra = match throughput {
        Some(Throughput::Elements(n)) if b.mean_ns > 0.0 => {
            format!(" ({:.0} elem/s)", n as f64 * 1e9 / b.mean_ns)
        }
        Some(Throughput::Bytes(n)) if b.mean_ns > 0.0 => {
            format!(" ({:.0} B/s)", n as f64 * 1e9 / b.mean_ns)
        }
        _ => String::new(),
    };
    println!(
        "bench {full:<48} {:>14.0} ns/iter over {} iters{extra}",
        b.mean_ns, b.iters
    );
}

/// The harness entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs and reports a standalone benchmark.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(None, &name.into(), &b, None);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's iteration budget is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares the per-iteration throughput for the report line.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs and reports one benchmark of the group.
    pub fn bench_function<N: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: N,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        report(Some(&self.name), &name.into(), &b, self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags (e.g. --test,
            // --bench); none change the shim's behavior.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_body() {
        let mut ran = 0u32;
        Criterion::default().bench_function("t", |b| b.iter(|| ran += 1));
        assert!(ran >= shim_iters() as u32);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(5));
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
